#include "grok/edit.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

GrokPattern parse(const char* text) {
  auto p = GrokPattern::parse(text);
  EXPECT_TRUE(p.ok()) << p.status().message();
  return std::move(p.value());
}

TEST(Rename, Basic) {
  GrokPattern p = parse("%{DATETIME:P1F1} %{IP:P1F2} login");
  ASSERT_TRUE(pattern_edit::rename_field(p, "P1F1", "logTime").ok());
  EXPECT_EQ(p.to_string(), "%{DATETIME:logTime} %{IP:P1F2} login");
}

TEST(Rename, Errors) {
  GrokPattern p = parse("%{WORD:a} %{WORD:b}");
  EXPECT_FALSE(pattern_edit::rename_field(p, "missing", "x").ok());
  EXPECT_FALSE(pattern_edit::rename_field(p, "a", "b").ok());  // collision
  EXPECT_FALSE(pattern_edit::rename_field(p, "a", "").ok());
}

TEST(Specialize, PaperExample) {
  // Replace %{IP:P1F2} with the fixed value "127.0.0.1".
  GrokPattern p = parse("%{WORD:Action} DB %{IP:P1F2}");
  ASSERT_TRUE(pattern_edit::specialize(p, "P1F2", "127.0.0.1").ok());
  EXPECT_EQ(p.to_string(), "%{WORD:Action} DB 127.0.0.1");
}

TEST(Specialize, RejectsMultiTokenValue) {
  GrokPattern p = parse("%{WORD:a}");
  EXPECT_FALSE(pattern_edit::specialize(p, "a", "two words").ok());
  EXPECT_FALSE(pattern_edit::specialize(p, "a", "").ok());
  EXPECT_FALSE(pattern_edit::specialize(p, "nope", "x").ok());
}

TEST(Generalize, PaperExample) {
  // Generalize "user1" into %{NOTSPACE:userName}.
  GrokPattern p = parse("%{WORD:Action} user1");
  ASSERT_TRUE(
      pattern_edit::generalize(p, 1, Datatype::kNotSpace, "userName").ok());
  EXPECT_EQ(p.to_string(), "%{WORD:Action} %{NOTSPACE:userName}");
}

TEST(Generalize, Errors) {
  GrokPattern p = parse("%{WORD:a} lit");
  EXPECT_FALSE(pattern_edit::generalize(p, 0, Datatype::kWord, "x").ok());
  EXPECT_FALSE(pattern_edit::generalize(p, 5, Datatype::kWord, "x").ok());
  EXPECT_FALSE(pattern_edit::generalize(p, 1, Datatype::kWord, "a").ok());
}

TEST(WidenToAnyData, MergesTokenRange) {
  GrokPattern p = parse("head %{WORD:a} mid tail");
  ASSERT_TRUE(pattern_edit::widen_to_anydata(p, 1, 2, "body").ok());
  EXPECT_EQ(p.to_string(), "head %{ANYDATA:body} tail");
  GrokPattern q = parse("a b");
  EXPECT_FALSE(pattern_edit::widen_to_anydata(q, 1, 0, "x").ok());
  EXPECT_FALSE(pattern_edit::widen_to_anydata(q, 0, 9, "x").ok());
}

TEST(GenericNames, Recognition) {
  EXPECT_TRUE(pattern_edit::is_generic_name("P1F1"));
  EXPECT_TRUE(pattern_edit::is_generic_name("P12F34"));
  EXPECT_FALSE(pattern_edit::is_generic_name("PDU"));
  EXPECT_FALSE(pattern_edit::is_generic_name("P1"));
  EXPECT_FALSE(pattern_edit::is_generic_name("PF1"));
  EXPECT_FALSE(pattern_edit::is_generic_name("P1F"));
  EXPECT_FALSE(pattern_edit::is_generic_name("P1F2x"));
  EXPECT_FALSE(pattern_edit::is_generic_name(""));
}

TEST(HeuristicNames, PaperPduExample) {
  // "PDU = %{NUMBER:P1F1}" is renamed to "PDU = %{NUMBER:PDU}".
  GrokPattern p = parse("PDU = %{NUMBER:P1F1}");
  EXPECT_EQ(pattern_edit::apply_heuristic_names(p), 1);
  EXPECT_EQ(p.to_string(), "PDU = %{NUMBER:PDU}");
}

TEST(HeuristicNames, KeyEqualsAndColonForms) {
  GrokPattern p = parse("latency= %{NUMBER:P1F1} status: %{WORD:P1F2}");
  EXPECT_EQ(pattern_edit::apply_heuristic_names(p), 2);
  EXPECT_EQ(p.to_string(), "latency= %{NUMBER:latency} status: %{WORD:status}");
}

TEST(HeuristicNames, NoFalsePositives) {
  // Fields without a Key=/Key: predecessor keep generic names; user-named
  // fields are never touched.
  GrokPattern p = parse("%{WORD:P1F1} foo %{NUMBER:custom}");
  EXPECT_EQ(pattern_edit::apply_heuristic_names(p), 0);
  EXPECT_EQ(p.to_string(), "%{WORD:P1F1} foo %{NUMBER:custom}");
}

TEST(HeuristicNames, DeduplicatesWithinPattern) {
  GrokPattern p = parse("x = %{NUMBER:P1F1} x = %{NUMBER:P1F2}");
  // Only the first can take "x"; the second would collide and is skipped.
  EXPECT_EQ(pattern_edit::apply_heuristic_names(p), 1);
  EXPECT_EQ(p.to_string(), "x = %{NUMBER:x} x = %{NUMBER:P1F2}");
}

TEST(HeuristicNames, SanitizesKeys) {
  GrokPattern p = parse("[cpu.load]: %{NUMBER:P1F1}");
  EXPECT_EQ(pattern_edit::apply_heuristic_names(p), 1);
  EXPECT_EQ(p.tokens()[1].field.name, "cpuload");
}

}  // namespace
}  // namespace loglens
