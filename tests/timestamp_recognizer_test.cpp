#include "timestamp/recognizer.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace loglens {
namespace {

std::vector<std::string_view> views(std::initializer_list<const char*> toks) {
  return std::vector<std::string_view>(toks.begin(), toks.end());
}

TEST(Predefined, ExactlyEightyNineFormats) {
  // The paper: "LogLens has 89 predefined timestamp formats in the
  // knowledge-base."
  EXPECT_EQ(TimestampRecognizer::predefined_formats().size(), 89u);
}

TEST(Predefined, AllCompile) {
  TimestampRecognizer r;  // aborts internally if any predefined is invalid
  EXPECT_EQ(r.format_count(), 89u);
}

TEST(Recognize, HeterogeneousFormsUnifyToSameInstant) {
  // The paper's example: the same instant written many ways.
  TimestampRecognizer r;
  const int64_t expect =
      to_epoch_millis(CivilTime{2016, 2, 23, 9, 0, 31, 0});
  struct Case {
    std::vector<std::string_view> tokens;
    size_t span;
  };
  std::vector<Case> cases = {
      {views({"2016/02/23", "09:00:31"}), 2},
      {views({"2016/02/23", "09:00:31.000"}), 2},
      {views({"Feb", "23,", "2016", "09:00:31"}), 4},
      {views({"2016", "Feb", "23", "09:00:31"}), 4},
      {views({"02/23/2016", "09:00:31"}), 2},
      {views({"02-23-2016", "09:00:31"}), 2},
  };
  for (const auto& c : cases) {
    auto m = r.match_at(c.tokens, 0);
    ASSERT_TRUE(m.has_value()) << c.tokens[0];
    EXPECT_EQ(m->span, c.span) << c.tokens[0];
    EXPECT_EQ(m->epoch_ms, expect) << c.tokens[0];
  }
}

TEST(Recognize, NoMatchForOrdinaryTokens) {
  TimestampRecognizer r;
  EXPECT_FALSE(r.match_at(views({"login", "user1"}), 0).has_value());
  EXPECT_FALSE(r.match_at(views({"127.0.0.1"}), 0).has_value());
  // A plain number is not a timestamp.
  EXPECT_FALSE(r.match_at(views({"123456"}), 0).has_value());
}

TEST(Recognize, AmbiguousYearFirstPrefersMonthDayOrder) {
  // "2016/02/23" matches both yyyy/MM/dd and yyyy/dd/MM; the canonical
  // order is listed first and must win.
  TimestampRecognizer r;
  auto m = r.match_at(views({"2016/02/23", "09:00:31"}), 0);
  ASSERT_TRUE(m.has_value());
  CivilTime t = from_epoch_millis(m->epoch_ms);
  EXPECT_EQ(t.month, 2);
  EXPECT_EQ(t.day, 23);
  // Day > 12 disambiguates to yyyy/dd/MM.
  auto m2 = r.match_at(views({"2016/23/02", "09:00:31"}), 0);
  ASSERT_TRUE(m2.has_value());
  CivilTime t2 = from_epoch_millis(m2->epoch_ms);
  EXPECT_EQ(t2.month, 2);
  EXPECT_EQ(t2.day, 23);
}

TEST(Recognize, CacheSpeedsUpRepeatedFormat) {
  TimestampRecognizer r({.use_cache = true, .use_filter = false});
  auto toks = views({"2016/02/23", "09:00:31.000"});
  ASSERT_TRUE(r.match_at(toks, 0).has_value());
  uint64_t tried_first = r.stats().formats_tried;
  ASSERT_TRUE(r.match_at(toks, 0).has_value());
  uint64_t tried_second = r.stats().formats_tried - tried_first;
  EXPECT_EQ(tried_second, 1u);  // cache hit: exactly one structural match
  EXPECT_EQ(r.stats().cache_hits, 1u);
}

TEST(Recognize, FilterRejectsNonTimestampTokensCheaply) {
  TimestampRecognizer r({.use_cache = false, .use_filter = true});
  ASSERT_FALSE(r.match_at(views({"login"}), 0).has_value());
  EXPECT_EQ(r.stats().filtered_out, 1u);
  EXPECT_EQ(r.stats().formats_tried, 0u);
  // Month-name keywords pass the filter.
  ASSERT_TRUE(
      r.match_at(views({"Feb", "23,", "2016", "09:00:31"}), 0).has_value());
  EXPECT_GT(r.stats().formats_tried, 0u);
}

TEST(Recognize, OptimizationsPreserveResults) {
  // Property: cache/filter must never change *what* is recognized.
  std::vector<std::vector<std::string_view>> inputs = {
      views({"2016/02/23", "09:00:31"}),
      views({"Feb", "23,", "2016", "09:00:31"}),
      views({"09:00:31,123"}),
      views({"2016-02-23T09:00:31.000"}),
      views({"notatime"}),
      views({"12345"}),
      views({"Tue", "Feb", "23", "09:00:31", "2016"}),
  };
  TimestampRecognizer plain({.use_cache = false, .use_filter = false});
  TimestampRecognizer cached({.use_cache = true, .use_filter = false});
  TimestampRecognizer filtered({.use_cache = false, .use_filter = true});
  TimestampRecognizer both({.use_cache = true, .use_filter = true});
  for (int round = 0; round < 3; ++round) {  // repeated to exercise cache
    for (const auto& in : inputs) {
      auto a = plain.match_at(in, 0);
      for (TimestampRecognizer* r : {&cached, &filtered, &both}) {
        auto b = r->match_at(in, 0);
        ASSERT_EQ(a.has_value(), b.has_value()) << in[0];
        if (a.has_value()) {
          EXPECT_EQ(a->epoch_ms, b->epoch_ms) << in[0];
          EXPECT_EQ(a->span, b->span) << in[0];
        }
      }
    }
  }
}

TEST(Recognize, UserFormatsReplacePredefined) {
  TimestampRecognizer r({}, {"yyyy.MM.dd@HH:mm"});
  EXPECT_EQ(r.format_count(), 1u);
  EXPECT_TRUE(r.match_at(views({"2016.02.23@09:00"}), 0).has_value());
  // Predefined forms are no longer recognized.
  EXPECT_FALSE(r.match_at(views({"2016/02/23", "09:00:31"}), 0).has_value());
}

TEST(Recognize, AddFormatExtendsList) {
  TimestampRecognizer r;
  EXPECT_FALSE(r.match_at(views({"20160223-090031"}), 0).has_value());
  ASSERT_TRUE(r.add_format("yyyyMMdd-HHmmss").ok());
  EXPECT_EQ(r.format_count(), 90u);
  auto m = r.match_at(views({"20160223-090031"}), 0);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->epoch_ms, to_epoch_millis(CivilTime{2016, 2, 23, 9, 0, 31, 0}));
  EXPECT_FALSE(r.add_format("yyy").ok());
}

TEST(Recognize, MidLogPosition) {
  TimestampRecognizer r;
  auto toks = views({"INFO", "2016/02/23", "09:00:31", "done"});
  EXPECT_FALSE(r.match_at(toks, 0).has_value());
  auto m = r.match_at(toks, 1);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->span, 2u);
  EXPECT_FALSE(r.match_at(toks, 3).has_value());
}

}  // namespace
}  // namespace loglens
