#include "automata/detector.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

ParsedLog elog(int pattern, const std::string& id, int64_t ts) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  log.fields.emplace_back("P" + std::to_string(pattern) + "F1", Json(id));
  log.raw = "p" + std::to_string(pattern) + " " + id + " @" +
            std::to_string(ts);
  return log;
}

// Model: one automaton, sequence 1 -> 2{1,2} -> 3, duration in [200, 500].
SequenceModel simple_model() {
  SequenceModel m;
  m.id_fields = {{1, "P1F1"}, {2, "P2F1"}, {3, "P3F1"}};
  Automaton a;
  a.id = 1;
  a.begin_patterns = {1};
  a.end_patterns = {3};
  a.states[1] = {1, 1, 1};
  a.states[2] = {2, 1, 2};
  a.states[3] = {3, 1, 1};
  a.min_duration_ms = 200;
  a.max_duration_ms = 500;
  a.transitions = {{1, 2}, {2, 2}, {2, 3}};
  m.automata.push_back(a);
  return m;
}

std::vector<Anomaly> feed(SequenceDetector& det,
                          std::initializer_list<ParsedLog> logs) {
  std::vector<Anomaly> out;
  for (const auto& l : logs) {
    auto a = det.on_log(l, "src");
    out.insert(out.end(), a.begin(), a.end());
  }
  return out;
}

TEST(Detector, NormalEventProducesNoAnomaly) {
  SequenceDetector det(simple_model());
  auto anomalies = feed(det, {elog(1, "e1", 1000), elog(2, "e1", 1150),
                              elog(3, "e1", 1300)});
  EXPECT_TRUE(anomalies.empty());
  EXPECT_EQ(det.open_events(), 0u);  // closed on end arrival
  EXPECT_EQ(det.stats().events_closed, 1u);
}

TEST(Detector, InterleavedEventsTrackedIndependently) {
  SequenceDetector det(simple_model());
  std::vector<Anomaly> anomalies =
      feed(det, {elog(1, "a", 1000), elog(1, "b", 1020), elog(2, "a", 1150),
                 elog(2, "b", 1180), elog(3, "a", 1300), elog(3, "b", 1320)});
  EXPECT_TRUE(anomalies.empty());
  EXPECT_EQ(det.stats().events_closed, 2u);
}

TEST(Detector, MissingBeginDetectedAtClose) {
  SequenceDetector det(simple_model());
  auto anomalies = feed(det, {elog(2, "e1", 1000), elog(3, "e1", 1210)});
  ASSERT_FALSE(anomalies.empty());
  EXPECT_EQ(anomalies[0].type, AnomalyType::kMissingBeginState);
  EXPECT_EQ(anomalies[0].event_id, "e1");
  EXPECT_EQ(anomalies[0].automaton_id, 1);
  EXPECT_EQ(anomalies[0].source, "src");
}

TEST(Detector, MissingIntermediateDetectedAtClose) {
  SequenceDetector det(simple_model());
  auto anomalies = feed(det, {elog(1, "e1", 1000), elog(3, "e1", 1300)});
  bool found = false;
  for (const auto& a : anomalies) {
    if (a.type == AnomalyType::kMissingIntermediateState) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Detector, OccurrenceViolationAboveMax) {
  SequenceDetector det(simple_model());
  auto anomalies =
      feed(det, {elog(1, "e1", 1000), elog(2, "e1", 1100), elog(2, "e1", 1150),
                 elog(2, "e1", 1200), elog(3, "e1", 1300)});
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].type, AnomalyType::kOccurrenceViolation);
  EXPECT_NE(anomalies[0].reason.find("3 times"), std::string::npos);
}

TEST(Detector, DurationViolationSlowAndFast) {
  SequenceDetector det(simple_model());
  auto slow = feed(det, {elog(1, "slow", 1000), elog(2, "slow", 1300),
                         elog(3, "slow", 2000)});  // 1000 > max 500
  ASSERT_EQ(slow.size(), 1u);
  EXPECT_EQ(slow[0].type, AnomalyType::kDurationViolation);
  auto fast = feed(det, {elog(1, "fast", 5000), elog(2, "fast", 5050),
                         elog(3, "fast", 5100)});  // 100 < min 200
  ASSERT_EQ(fast.size(), 1u);
  EXPECT_EQ(fast[0].type, AnomalyType::kDurationViolation);
}

TEST(Detector, MissingEndOnlyViaHeartbeat) {
  SequenceDetector det(simple_model());
  auto during = feed(det, {elog(1, "e1", 1000), elog(2, "e1", 1100)});
  EXPECT_TRUE(during.empty());
  EXPECT_EQ(det.open_events(), 1u);
  // Heartbeat before the deadline: nothing yet.
  EXPECT_TRUE(det.on_heartbeat(1400).empty());
  EXPECT_EQ(det.open_events(), 1u);
  // Past first_ts + max_duration: expired, missing end reported.
  auto expired = det.on_heartbeat(1600);
  ASSERT_FALSE(expired.empty());
  EXPECT_EQ(expired[0].type, AnomalyType::kMissingEndState);
  EXPECT_EQ(det.open_events(), 0u);
  EXPECT_EQ(det.stats().events_expired, 1u);
  // Without the heartbeat the anomaly would never have been reported —
  // exactly the Figure 5 gap.
}

TEST(Detector, HeartbeatUsesLogTimeNotArrivalOrder) {
  SequenceDetector det(simple_model());
  feed(det, {elog(1, "e1", 1'000'000)});
  // A heartbeat carrying an *earlier* log time must not expire anything.
  EXPECT_TRUE(det.on_heartbeat(999'000).empty());
  EXPECT_EQ(det.open_events(), 1u);
}

TEST(Detector, UnknownPatternsIgnored) {
  SequenceDetector det(simple_model());
  ParsedLog stray = elog(42, "e1", 1000);
  EXPECT_TRUE(det.on_log(stray, "src").empty());
  EXPECT_EQ(det.open_events(), 0u);
  // Logs with an id field entry but no id value are also ignored.
  ParsedLog no_id;
  no_id.pattern_id = 1;
  no_id.timestamp_ms = 1000;
  EXPECT_TRUE(det.on_log(no_id, "src").empty());
  EXPECT_EQ(det.open_events(), 0u);
}

TEST(Detector, TransitionCheckingOptIn) {
  DetectorOptions opts;
  opts.check_transitions = true;
  SequenceModel model = simple_model();
  // Add pattern 2b (id 4) as an alternative middle so an unusual order can
  // exist inside one automaton: allowed 1->2->4->3 only.
  model.id_fields[4] = "P4F1";
  Automaton& a = model.automata[0];
  a.states[4] = {4, 1, 1};
  a.transitions = {{1, 2}, {2, 4}, {4, 3}};
  SequenceDetector det(model, opts);
  // Out-of-order middle: 1 -> 4 -> 2 -> 3.
  auto anomalies = feed(det, {elog(1, "e1", 1000), elog(4, "e1", 1100),
                              elog(2, "e1", 1200), elog(3, "e1", 1300)});
  size_t transitions = 0;
  for (const auto& an : anomalies) {
    if (an.type == AnomalyType::kUnknownTransition) ++transitions;
  }
  EXPECT_EQ(transitions, 3u);  // 1->4, 4->2, 2->3 all unseen
}

TEST(Detector, ModelUpdatePreservesOpenState) {
  SequenceDetector det(simple_model());
  feed(det, {elog(1, "e1", 1000), elog(2, "e1", 1100)});
  ASSERT_EQ(det.open_events(), 1u);
  // Update to a model with a longer max duration; the open event survives
  // and closes normally afterwards.
  SequenceModel longer = simple_model();
  longer.automata[0].max_duration_ms = 10'000;
  det.update_model(longer);
  EXPECT_EQ(det.open_events(), 1u);
  auto anomalies = feed(det, {elog(3, "e1", 2500)});  // duration 1500 < 10000
  EXPECT_TRUE(anomalies.empty());
  EXPECT_EQ(det.stats().events_closed, 1u);
}

TEST(Detector, DeletedAutomatonSilencesItsEvents) {
  // Table V semantics: after deleting the automaton, its events stop
  // producing anomalies entirely.
  SequenceModel empty;
  empty.id_fields = simple_model().id_fields;
  SequenceDetector det(simple_model());
  feed(det, {elog(1, "e1", 1000)});
  det.update_model(empty);
  auto anomalies = feed(det, {elog(2, "e1", 1100)});
  EXPECT_TRUE(anomalies.empty());
  // Heartbeats cannot blame a deleted automaton either.
  auto hb = det.on_heartbeat(1'000'000'000);
  EXPECT_TRUE(hb.empty());
}

TEST(Detector, EvictionBoundsOpenStates) {
  DetectorOptions opts;
  opts.max_open_events = 4;
  SequenceDetector det(simple_model(), opts);
  for (int e = 0; e < 10; ++e) {
    det.on_log(elog(1, "e" + std::to_string(e), 1000 + e), "src");
  }
  EXPECT_LE(det.open_events(), 5u);
  EXPECT_GT(det.stats().evicted, 0u);
}

TEST(Detector, EvictionReportsAnomalyAndPicksEarliestDeadline) {
  DetectorOptions opts;
  opts.max_open_events = 2;
  SequenceDetector det(simple_model(), opts);
  EXPECT_TRUE(det.on_log(elog(1, "b", 2000), "src").empty());
  EXPECT_TRUE(det.on_log(elog(1, "a", 1000), "src").empty());
  // Third open event exceeds the bound: "a" has the earliest deadline
  // (first_ts 1000 + max duration 500) and must be the one reported.
  auto anomalies = det.on_log(elog(1, "c", 3000), "src");
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].type, AnomalyType::kOpenStateEvicted);
  EXPECT_EQ(anomalies[0].event_id, "a");
  EXPECT_EQ(anomalies[0].automaton_id, 1);
  EXPECT_EQ(anomalies[0].timestamp_ms, 1000);  // the event's own log time
  EXPECT_EQ(anomalies[0].details.get_int("deadline_ms", 0), 1500);
  EXPECT_EQ(det.open_events(), 2u);
  EXPECT_EQ(det.stats().evicted, 1u);
  // The evicted event is gone: a later heartbeat expires only b and c.
  auto expired = det.on_heartbeat(1'000'000);
  size_t missing_end = 0;
  for (const auto& a : expired) {
    EXPECT_NE(a.event_id, "a");
    if (a.type == AnomalyType::kMissingEndState) ++missing_end;
  }
  EXPECT_EQ(missing_end, 2u);
}

TEST(Detector, EvictionPrefersEventsThatCanNeverExpire) {
  DetectorOptions opts;
  opts.max_open_events = 2;
  SequenceDetector det(simple_model(), opts);
  // An event whose only log carries no timestamp has no expiry deadline; it
  // would pin memory forever, so the bound takes it first.
  EXPECT_TRUE(det.on_log(elog(1, "timeless", -1), "src").empty());
  EXPECT_TRUE(det.on_log(elog(1, "fresh", 5000), "src").empty());
  auto anomalies = det.on_log(elog(1, "newer", 6000), "src");
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].type, AnomalyType::kOpenStateEvicted);
  EXPECT_EQ(anomalies[0].event_id, "timeless");
  EXPECT_EQ(anomalies[0].details.get_int("deadline_ms", 0), -1);
}

TEST(Detector, ModelUpdateRecomputesDeadlines) {
  SequenceDetector det(simple_model());
  feed(det, {elog(1, "e1", 1000)});
  // Under the learned max duration (500) the event is not yet overdue.
  EXPECT_TRUE(det.on_heartbeat(1400).empty());
  // A model update that tightens the duration bound moves the deadline
  // earlier; the same heartbeat time now expires the event.
  SequenceModel tight = simple_model();
  tight.automata[0].max_duration_ms = 100;
  det.update_model(tight);
  auto expired = det.on_heartbeat(1400);
  ASSERT_FALSE(expired.empty());
  EXPECT_EQ(expired[0].type, AnomalyType::kMissingEndState);
  EXPECT_EQ(det.open_events(), 0u);
}

TEST(Detector, SupersededDeadlinesAreDiscardedLazily) {
  SequenceDetector det(simple_model());
  feed(det, {elog(2, "e1", 2000)});
  // An out-of-order earlier log pulls first_ts back, changing the deadline;
  // the superseded heap entry is discarded as a stale pop on the next sweep.
  feed(det, {elog(2, "e1", 1000)});
  EXPECT_GE(det.deadline_index_size(), 2u);
  auto expired = det.on_heartbeat(1'000'000);
  ASSERT_FALSE(expired.empty());
  EXPECT_EQ(det.stats().stale_pops, 1u);
  EXPECT_EQ(det.deadline_index_size(), 0u);
}

TEST(Detector, DeadlineHeapCompactsUnderChurn) {
  SequenceDetector det(simple_model());
  // 200 deadline changes on a single open event (each out-of-order log
  // moves first_ts earlier). Lazy deletion would hold 200 entries; the
  // compaction bound keeps the heap within a constant factor of the one
  // live event.
  for (int i = 0; i < 200; ++i) {
    feed(det, {elog(2, "e1", 100'000 - i * 10)});
  }
  EXPECT_EQ(det.open_events(), 1u);
  EXPECT_GT(det.stats().heap_rebuilds, 0u);
  EXPECT_LE(det.deadline_index_size(), 64u);
}

TEST(Detector, AnomalyCarriesAssociatedLogs) {
  SequenceDetector det(simple_model());
  auto anomalies = feed(det, {elog(2, "e1", 1000), elog(3, "e1", 1210)});
  ASSERT_FALSE(anomalies.empty());
  ASSERT_EQ(anomalies[0].logs.size(), 2u);
  EXPECT_NE(anomalies[0].logs[0].find("p2 e1"), std::string::npos);
}

TEST(Detector, EventsWithNoCandidateUseDefaultTimeout) {
  // Two patterns from *different* automata under one event id never fit a
  // single automaton; the default timeout governs expiry.
  SequenceModel m = simple_model();
  Automaton b;
  b.id = 2;
  b.begin_patterns = {7};
  b.end_patterns = {8};
  b.states[7] = {7, 1, 1};
  b.states[8] = {8, 1, 1};
  b.max_duration_ms = 100;
  m.automata.push_back(b);
  m.id_fields[7] = "P7F1";
  DetectorOptions opts;
  opts.default_timeout_ms = 500;
  SequenceDetector det(m, opts);
  feed(det, {elog(1, "mix", 1000), elog(7, "mix", 1050)});
  EXPECT_EQ(det.open_events(), 1u);
  EXPECT_TRUE(det.on_heartbeat(1500).empty());  // last_ts+500 = 1550
  auto expired = det.on_heartbeat(1600);
  EXPECT_FALSE(expired.empty());
}

}  // namespace
}  // namespace loglens
