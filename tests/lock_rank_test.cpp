// Tests for the runtime lock-rank checker (common/lock_rank.h).
//
// This target is compiled with -DLOGLENS_LOCK_RANK_CHECKS=1 (see
// tests/CMakeLists.txt), so the checked behaviour is exercised regardless of
// the build type; lock_rank_release_test compiles the same RankedMutex with
// checks forced off and pins the passthrough behaviour.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/lock_rank.h"

namespace loglens {
namespace {

TEST(LockRankTest, ChecksAreCompiledIn) {
  EXPECT_TRUE(lock_rank::checks_enabled());
}

TEST(LockRankTest, InOrderNestingPasses) {
  RankedMutex outer(lock_rank::kServiceRecover);
  RankedMutex mid(lock_rank::kBroker);
  RankedMutex leaf(lock_rank::kMetrics);
  EXPECT_EQ(lock_rank::held_count(), 0);
  {
    RankedMutexLock a(outer);
    RankedMutexLock b(mid);
    RankedMutexLock c(leaf);
    EXPECT_EQ(lock_rank::held_count(), 3);
  }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRankDeathTest, RankInversionAborts) {
  RankedMutex broker(lock_rank::kBroker);
  RankedMutex group(lock_rank::kConsumerGroup);
  EXPECT_DEATH(
      {
        RankedMutexLock a(broker);
        // kConsumerGroup < kBroker: fetching under the group lock is legal,
        // but taking the group lock while holding the broker's is the
        // inversion that could deadlock against poll().
        RankedMutexLock b(group);
      },
      "lock rank violation");
}

TEST(LockRankDeathTest, SameRankReacquisitionAborts) {
  RankedMutex a(lock_rank::kStorage);
  RankedMutex b(lock_rank::kStorage);
  // Two same-rank locks (e.g. two DocumentStores) must never nest: with no
  // defined order between them, an ABBA deadlock would be one interleaving
  // away.
  EXPECT_DEATH(
      {
        RankedMutexLock la(a);
        RankedMutexLock lb(b);
      },
      "lock rank violation");
}

TEST(LockRankTest, SequentialSameRankIsFine) {
  RankedMutex a(lock_rank::kStorage);
  RankedMutex b(lock_rank::kStorage);
  { RankedMutexLock la(a); }
  { RankedMutexLock lb(b); }
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRankTest, HeldSetIsPerThread) {
  RankedMutex outer(lock_rank::kEngineRun);
  RankedMutexLock hold(outer);
  // Another thread holds nothing, so it may take any rank — including one
  // below what this thread holds.
  std::thread t([] {
    RankedMutex low(lock_rank::kServiceRecover);
    RankedMutexLock l(low);
    EXPECT_EQ(lock_rank::held_count(), 1);
  });
  t.join();
  EXPECT_EQ(lock_rank::held_count(), 1);
}

TEST(LockRankTest, TryLockParticipates) {
  RankedMutex mu(lock_rank::kBroker);
  ASSERT_TRUE(mu.try_lock());
  EXPECT_EQ(lock_rank::held_count(), 1);
  mu.unlock();
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRankTest, ManyThreadsContendWithoutFalsePositives) {
  // The checker must never misfire on a correct program: hammer a correctly
  // ordered pair from several threads.
  RankedMutex outer(lock_rank::kEngineRun);
  RankedMutex inner(lock_rank::kThreadPool);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        RankedMutexLock a(outer);
        RankedMutexLock b(inner);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRankTest, RankAccessor) {
  RankedMutex mu(lock_rank::kFaults);
  EXPECT_EQ(mu.rank(), lock_rank::kFaults);
}

}  // namespace
}  // namespace loglens
