// Chaos suite: the full pipeline under randomized fault injection.
//
// The determinism trick: every armed site carries a max_triggers cap that is
// strictly below the consumer's retry budget (broker produce retries 5
// attempts, engine tasks 4), so every injected failure is eventually
// absorbed by a retry — which makes it *provable* that the anomaly output of
// a faulted run must equal the fault-free run, even though thread
// interleavings differ. Crash recovery is exercised both explicitly
// (checkpoint + recover() mid-run) and through the supervisor thread.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "datagen/datasets.h"
#include "faults/fault_injector.h"
#include "metrics/metrics.h"
#include "service/service.h"
#include "streaming/job.h"
#include "trace/trace.h"

namespace loglens {
namespace {

constexpr int64_t kDayMs = 24LL * 3600 * 1000;

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Canonical form of the anomaly report: sorted JSON dumps. Runs are compared
// as multisets because partition interleaving permutes the store order.
std::multiset<std::string> normalized(const AnomalyStore& store) {
  std::multiset<std::string> out;
  for (const auto& a : store.all()) out.insert(a.to_json().dump());
  return out;
}

std::set<std::string> detected_ids(const AnomalyStore& store) {
  std::set<std::string> out;
  for (const auto& a : store.all()) {
    if (!a.event_id.empty()) out.insert(a.event_id);
  }
  return out;
}

// Arms every pipeline site with capped specs. Caps are the safety argument:
//   produce: 3 fires  < 5 produce attempts  -> no produce ever errors
//   task.*:  3 fires  < 4 task attempts     -> no dead letters, no fatals
//   fetch:   transparent (reads as an empty poll) at any count
void arm_chaos(FaultInjector& faults) {
  FaultSpec produce;
  produce.probability = 0.05;
  produce.max_triggers = 3;
  faults.arm(kFaultSiteProduce, produce);

  FaultSpec fetch;
  fetch.probability = 0.05;
  fetch.max_triggers = 4;
  faults.arm(kFaultSiteFetch, fetch);

  FaultSpec start;  // latency spike, not a failure
  start.action = FaultAction::kDelay;
  start.delay_ms = 2;
  start.probability = 0.05;
  start.max_triggers = 3;
  faults.arm(kFaultSiteTaskStart, start);

  FaultSpec process;
  process.probability = 0.3;
  process.max_triggers = 3;
  faults.arm(kFaultSiteTaskProcess, process);

  FaultSpec finish;
  finish.probability = 0.2;
  finish.max_triggers = 3;
  faults.arm(kFaultSiteTaskFinish, finish);
}

// One full end-to-end run: train, stream the test split, expire leftovers.
std::multiset<std::string> run_pipeline(const Dataset& d,
                                        MetricsRegistry* registry,
                                        FaultInjector* faults) {
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  opts.metrics = registry;
  opts.faults = faults;
  LogLensService service(opts);
  service.train(d.training);
  Agent agent = service.make_agent("D1");
  agent.replay(d.testing);
  service.drain();
  service.heartbeat_advance(kDayMs);
  service.drain();
  EXPECT_FALSE(service.failed());
  return normalized(service.anomalies());
}

uint64_t task_retries(MetricsRegistry& registry) {
  return registry
             .counter("loglens_engine_task_retries_total",
                      {{"stage", "parser"}})
             .value() +
         registry
             .counter("loglens_engine_task_retries_total",
                      {{"stage", "detector"}})
             .value();
}

TEST(ChaosTest, OutputEqualsFaultFreeRunAcrossSeeds) {
  Dataset d = make_d1(0.05);
  MetricsRegistry clean_registry;
  auto expected = run_pipeline(d, &clean_registry, nullptr);
  ASSERT_FALSE(expected.empty());

  for (uint64_t seed : {1u, 2u, 3u}) {
    MetricsRegistry registry;
    FaultInjector faults(seed, &registry);
    arm_chaos(faults);
    auto got = run_pipeline(d, &registry, &faults);
    EXPECT_EQ(got, expected) << "seed " << seed;
    // The run must actually have been under fire, and the injected task
    // failures must have been absorbed by retries.
    EXPECT_GT(faults.total_triggered(), 0u) << "seed " << seed;
    EXPECT_GT(task_retries(registry), 0u) << "seed " << seed;
    EXPECT_EQ(registry
                  .counter("loglens_engine_dead_letter_records_total",
                           {{"stage", "parser"}})
                  .value(),
              0u);
    EXPECT_EQ(registry
                  .counter("loglens_engine_dead_letter_records_total",
                           {{"stage", "detector"}})
                  .value(),
              0u);
  }
}

TEST(ChaosTest, RecoverRewindsToCheckpointAndConverges) {
  Dataset d = make_d1(0.05);
  std::string path = temp_path("loglens_chaos_recover.json");

  // Control: the same stream with no crash.
  MetricsRegistry control_registry;
  auto expected = run_pipeline(d, &control_registry, nullptr);

  MetricsRegistry registry;
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  opts.metrics = &registry;
  opts.checkpoint_path = path;
  LogLensService service(opts);
  service.train(d.training);
  Agent agent = service.make_agent("D1");

  const size_t half = d.testing.size() / 2;
  const size_t three_quarters = d.testing.size() * 3 / 4;
  agent.replay({d.testing.begin(), d.testing.begin() + half});
  service.drain();
  ASSERT_TRUE(service.checkpoint(path).ok());
  const size_t at_checkpoint = service.anomalies().count();

  // Keep processing past the checkpoint, then "crash" and recover: state,
  // offsets, and the anomaly store must all roll back to the cut...
  agent.replay({d.testing.begin() + half, d.testing.begin() + three_quarters});
  service.drain();
  ASSERT_TRUE(service.recover().ok());
  EXPECT_EQ(service.anomalies().count(), at_checkpoint);
  EXPECT_EQ(service.recoveries(), 1u);

  // ...and replaying the tail converges to exactly the no-crash outcome:
  // at-least-once redelivery upstream, exactly-once in the anomaly report.
  agent.replay({d.testing.begin() + three_quarters, d.testing.end()});
  service.drain();
  service.heartbeat_advance(kDayMs);
  service.drain();
  EXPECT_EQ(normalized(service.anomalies()), expected);
  EXPECT_EQ(detected_ids(service.anomalies()), d.anomalous_event_ids);

  // The replayed third quarter reached the detector twice (once before the
  // crash, once re-emitted by the parser) — the dedup guard ate the copies.
  uint64_t dedup = 0;
  for (size_t p = 0; p < 2; ++p) {
    dedup += registry
                 .counter("loglens_detector_dedup_skipped_total",
                          {{"partition", std::to_string(p)}})
                 .value();
  }
  EXPECT_GT(dedup, 0u);
  std::remove(path.c_str());
}

// Crash recovery must not sever the trace tree: batches redelivered after
// recover() carry their original trace identity, so every detector pipeline
// span that has a parent still chains to a parser pipeline span, and the
// whole run records spans without overflowing the per-thread buffers.
TEST(ChaosTest, TraceIdentitySurvivesRecoveryReplay) {
  const bool was_enabled = trace::enabled();
  trace::set_enabled(true);

  Dataset d = make_d1(0.05);
  std::string path = temp_path("loglens_chaos_trace_recover.json");
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  opts.metrics = &registry;
  opts.checkpoint_path = path;
  LogLensService service(opts);
  service.train(d.training);
  Agent agent = service.make_agent("D1");

  const size_t half = d.testing.size() / 2;
  agent.replay({d.testing.begin(), d.testing.begin() + half});
  service.drain();
  ASSERT_TRUE(service.checkpoint(path).ok());
  agent.replay({d.testing.begin() + half, d.testing.end()});
  service.drain();
  ASSERT_TRUE(service.recover().ok());
  // The rewound tail is redelivered and re-traced on the replayed drain.
  service.drain();
  service.heartbeat_advance(kDayMs);
  service.drain();
  EXPECT_EQ(detected_ids(service.anomalies()), d.anomalous_event_ids);

  auto spans = registry.take_trace_spans();
  std::set<uint64_t> parser_pipeline_ids;
  size_t detector_pipelines = 0;
  size_t chained = 0;
  for (const auto& span : spans) {
    if (span.name == "parser.pipeline") parser_pipeline_ids.insert(span.span_id);
  }
  for (const auto& span : spans) {
    if (span.name != "detector.pipeline") continue;
    ++detector_pipelines;
    if (span.parent_id != 0) {
      ++chained;
      EXPECT_EQ(parser_pipeline_ids.count(span.parent_id), 1u)
          << "detector pipeline parented to a span that is not a parser "
             "pipeline";
    }
  }
  EXPECT_GT(parser_pipeline_ids.size(), 0u);
  EXPECT_GT(detector_pipelines, 0u);
  EXPECT_GT(chained, 0u) << "no detector batch chained to a parser batch";
  EXPECT_EQ(registry.spans_dropped(), 0u);

  trace::set_enabled(was_enabled);
  std::remove(path.c_str());
}

TEST(ChaosTest, SupervisorRecoversParkedRunner) {
  Dataset d = make_d1(0.05);
  std::string path = temp_path("loglens_chaos_supervisor.json");
  MetricsRegistry registry;
  FaultInjector faults(5, &registry);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  opts.metrics = &registry;
  opts.faults = &faults;
  opts.checkpoint_path = path;
  opts.supervise = true;
  opts.supervise_interval_ms = 5;
  opts.workers = 1;  // serial partitions: the first guarded call below sees
                     // all 4 fires back to back and the batch goes fatal
  LogLensService service(opts);
  service.train(d.training);
  ASSERT_TRUE(service.checkpoint(path).ok());

  // Exactly the task retry budget: one on_batch_end exhausts its 4 attempts
  // (fatal batch -> runner parks), after which the cap is spent and the
  // recovered run sails through.
  FaultSpec finish;
  finish.probability = 1.0;
  finish.max_triggers = 4;
  faults.arm(kFaultSiteTaskFinish, finish);

  service.start();
  Agent agent = service.make_agent("D1");
  agent.replay(d.testing);
  // Pump ingest -> logs ourselves (drain() would also recover in place,
  // which is exactly what this test must NOT lean on): the running parser
  // hits the finish faults, parks, and the supervisor thread recovers it.
  for (int i = 0; i < 2000 && service.recoveries() == 0; ++i) {
    service.log_manager().drain();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(service.recoveries(), 1u);  // recovered while live, not at stop()
  service.stop();  // finishes any remaining drain synchronously
  service.heartbeat_advance(kDayMs);
  service.drain();

  EXPECT_GE(service.recoveries(), 1u);
  EXPECT_FALSE(service.failed());
  EXPECT_EQ(detected_ids(service.anomalies()), d.anomalous_event_ids);
  EXPECT_GE(registry.counter("loglens_service_recoveries_total").value(), 1u);
  std::remove(path.c_str());
}

TEST(ChaosTest, PoisonMessagesRouteToDeadLetterTopic) {
  // A message whose processing *always* throws must not kill the job: it
  // goes to the dead-letter topic and the stream keeps flowing.
  struct EchoTask : PartitionTask {
    void process(const Message& m, TaskContext& ctx) override { ctx.emit(m); }
  };
  MetricsRegistry registry;
  FaultInjector faults(77, &registry);
  Broker broker(&registry, &faults);
  broker.create_topic("in", 1);
  broker.create_topic("out", 1);
  broker.create_topic("dlq", 1);

  EngineOptions eopts;
  eopts.partitions = 1;
  eopts.workers = 1;
  eopts.metrics = &registry;
  eopts.stage = "poison";
  eopts.faults = &faults;
  eopts.task_max_attempts = 3;
  eopts.retry_base_ms = 0;
  StreamEngine engine(eopts, [](size_t) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<EchoTask>();
  });
  JobOptions jopts;
  jopts.input_topic = "in";
  jopts.output_topic = "out";
  jopts.name = "poison";
  jopts.metrics = &registry;
  jopts.dead_letter_topic = "dlq";
  JobRunner runner(broker, engine, jopts);

  for (int i = 0; i < 5; ++i) {
    Message m;
    m.key = "k";
    m.value = "v" + std::to_string(i);
    ASSERT_TRUE(broker.produce("in", m).ok());
  }
  FaultSpec process;  // uncapped: every attempt fails, every message poisons
  faults.arm(kFaultSiteTaskProcess, process);
  runner.drain();

  EXPECT_FALSE(runner.failed());
  EXPECT_EQ(broker.end_offset("dlq", 0), 5u);
  EXPECT_EQ(broker.end_offset("out", 0), 0u);
  EXPECT_EQ(registry
                .counter("loglens_job_dead_letter_records_total",
                         {{"job", "poison"}})
                .value(),
            5u);
  EXPECT_GT(registry
                .counter("loglens_engine_task_retries_total",
                         {{"stage", "poison"}})
                .value(),
            0u);

  // Drop the fault: fresh input flows end to end again.
  faults.disarm_all();
  Message ok;
  ok.key = "k";
  ok.value = "fine";
  ASSERT_TRUE(broker.produce("in", ok).ok());
  runner.drain();
  EXPECT_EQ(broker.end_offset("out", 0), 1u);
  EXPECT_EQ(broker.end_offset("dlq", 0), 5u);
}

// The tiered anomaly store under crash-shaped storage faults: segment
// flushes die mid-write (torn files at the final path) while the pipeline
// streams, and recover() must still rebuild the anomaly report exactly once
// — the faulted, disk-backed run converges to the in-memory fault-free run.
TEST(ChaosTest, RecoverExactlyOnceWhenSegmentFlushDiesMidWrite) {
  Dataset d = make_d1(0.05);
  std::string path = temp_path("loglens_chaos_storage_recover.json");
  std::string dir = temp_path("loglens_chaos_storage_dir");
  std::filesystem::remove_all(dir);

  MetricsRegistry control_registry;
  auto expected = run_pipeline(d, &control_registry, nullptr);

  MetricsRegistry registry;
  FaultInjector faults(37, &registry);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  opts.metrics = &registry;
  opts.faults = &faults;
  opts.checkpoint_path = path;
  opts.storage.dir = dir;
  opts.storage.hot_max_docs = 8;  // tiny hot tier: flush constantly
  LogLensService service(opts);
  service.train(d.training);
  Agent agent = service.make_agent("D1");

  // Every flush attempt dies mid-write until the cap is spent. Inserts
  // must absorb the failures (the doc stays hot, the flush retries on the
  // next threshold crossing).
  FaultSpec torn;
  torn.action = FaultAction::kTornWrite;
  torn.probability = 0.5;
  torn.max_triggers = 4;
  faults.arm(kFaultSiteSegmentFlush, torn);

  const size_t half = d.testing.size() / 2;
  const size_t three_quarters = d.testing.size() * 3 / 4;
  agent.replay({d.testing.begin(), d.testing.begin() + half});
  service.drain();
  ASSERT_TRUE(service.checkpoint(path).ok());
  const size_t at_checkpoint = service.anomalies().count();

  // Stream past the checkpoint, then crash-recover. recover() clears the
  // segment directory and rebuilds from the checkpoint: every anomaly
  // before the cut exactly once, none of the post-cut ones.
  agent.replay({d.testing.begin() + half, d.testing.begin() + three_quarters});
  service.drain();
  ASSERT_TRUE(service.recover().ok());
  EXPECT_EQ(service.anomalies().count(), at_checkpoint);

  // Stream the rest (the rewound third quarter is redelivered upstream):
  // at-least-once delivery, exactly-once in the report, byte-identical to
  // the in-memory fault-free control.
  agent.replay({d.testing.begin() + three_quarters, d.testing.end()});
  service.drain();
  service.heartbeat_advance(kDayMs);
  service.drain();
  ASSERT_TRUE(service.anomalies().flush().ok());
  EXPECT_EQ(normalized(service.anomalies()), expected);
  EXPECT_EQ(detected_ids(service.anomalies()), d.anomalous_event_ids);

  // The run really exercised the tiered path: faults fired, segments exist.
  EXPECT_GT(faults.triggered(kFaultSiteSegmentFlush), 0u);
  EXPECT_GE(service.anomalies().docs().segment_count(), 1u);
  std::remove(path.c_str());
  std::filesystem::remove_all(dir);
}

TEST(ChaosTest, TornCheckpointWriteKeepsLastGoodFile) {
  Dataset d = make_d1(0.05);
  std::string path = temp_path("loglens_chaos_torn.json");
  MetricsRegistry registry;
  FaultInjector faults(21, &registry);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  opts.metrics = &registry;
  opts.faults = &faults;
  LogLensService service(opts);
  service.train(d.training);
  Agent agent = service.make_agent("D1");
  const size_t half = d.testing.size() / 2;
  agent.replay({d.testing.begin(), d.testing.begin() + half});
  service.drain();
  ASSERT_TRUE(service.checkpoint(path).ok());
  const std::string good = slurp(path);
  ASSERT_FALSE(good.empty());

  // The pipeline moved on; the next checkpoint attempt tears mid-write.
  agent.replay({d.testing.begin() + half, d.testing.end()});
  service.drain();
  FaultSpec torn;
  torn.action = FaultAction::kTornWrite;
  torn.max_triggers = 1;
  faults.arm(kFaultSiteCheckpointWrite, torn);
  EXPECT_FALSE(service.checkpoint(path).ok());
  // tmp+rename protocol: the published file is byte-identical to the last
  // good checkpoint, and a fresh service can still restore from it.
  EXPECT_EQ(slurp(path), good);
  {
    MetricsRegistry fresh_registry;
    ServiceOptions fresh_opts;
    fresh_opts.build.discovery = recommended_discovery("D1");
    fresh_opts.metrics = &fresh_registry;
    LogLensService fresh(fresh_opts);
    EXPECT_TRUE(fresh.restore(path).ok());
  }
  // An injected hard failure also leaves the file alone. Re-arming keeps
  // the site's trigger count (1 from the torn write), so the cap must be
  // cumulative for this to fire exactly once more.
  FaultSpec die;
  die.max_triggers = 2;
  faults.arm(kFaultSiteCheckpointWrite, die);
  EXPECT_FALSE(service.checkpoint(path).ok());
  EXPECT_EQ(slurp(path), good);
  // Caps spent: checkpointing works again.
  EXPECT_TRUE(service.checkpoint(path).ok());
  EXPECT_NE(slurp(path), good);
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace loglens
