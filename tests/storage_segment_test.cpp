// Segment-file property tests: crash-shaped damage and the machinery that
// survives it.
//
// A segment written by the tiered engine is truncated at every byte boundary
// and bit-flipped at every byte offset; open() must reject every damaged
// variant (magic + size + checksum validation). Fault-injected flushes and
// compactions (throw and torn-write) must leave prior segments and the hot
// tier untouched and succeed on retry. Zone maps and posting dictionaries
// must prune, observable through QueryStats and the storage metrics.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "faults/fault_injector.h"
#include "metrics/metrics.h"
#include "storage/document_store.h"
#include "storage/segment.h"

namespace loglens {
namespace {

namespace fs = std::filesystem;

std::string test_dir(const std::string& tag) {
  const std::string dir =
      (fs::temp_directory_path() / ("loglens_segment_" + tag)).string();
  fs::remove_all(dir);
  return dir;
}

Json doc(const std::string& source, int64_t ts) {
  JsonObject o;
  o.emplace_back("source", Json(source));
  o.emplace_back("ts", Json(ts));
  return Json(std::move(o));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Every proper prefix of a segment file must be rejected at open time, and
// so must every single corrupted byte. This is the property that makes the
// torn-write fault recoverable: no half-written segment can ever be taken
// for data.
TEST(SegmentFile, TornAtEveryByteBoundaryRejected) {
  const std::string dir = test_dir("torn");
  fs::create_directories(dir);
  std::vector<Json> docs;
  for (int i = 0; i < 20; ++i) {
    docs.push_back(doc(i % 2 == 0 ? "web" : "db", 100 + i));
  }
  const std::string bytes = encode_segment(0, docs);
  const std::string good = dir + "/seg-good.llseg";
  write_file(good, bytes);
  ASSERT_TRUE(Segment::open(good).ok());

  const std::string victim = dir + "/seg-victim.llseg";
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    write_file(victim, bytes.substr(0, cut));
    auto opened = Segment::open(victim);
    ASSERT_FALSE(opened.ok()) << "truncation at byte " << cut << " of "
                              << bytes.size() << " was accepted";
  }
  for (size_t at = 0; at < bytes.size(); ++at) {
    std::string bad = bytes;
    bad[at] = static_cast<char>(bad[at] ^ 0x5a);
    write_file(victim, bad);
    auto opened = Segment::open(victim);
    ASSERT_FALSE(opened.ok()) << "byte flip at offset " << at
                              << " was accepted";
  }
  fs::remove_all(dir);
}

// A corrupt segment in the directory is rejected and counted at open, and
// the untouched segments before it remain fully readable.
TEST(SegmentFile, CorruptSegmentRejectedPriorSegmentsIntact) {
  const std::string dir = test_dir("reject");
  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 4;
  opts.auto_compact = false;
  std::string last_path;
  {
    DocumentStore store(opts);
    for (int i = 0; i < 12; ++i) store.insert(doc("web", i));
    ASSERT_TRUE(store.flush().ok());
    ASSERT_EQ(store.segment_count(), 3u);
  }
  // Corrupt the newest segment (highest base id sorts last).
  std::vector<std::string> paths;
  for (const auto& e : fs::directory_iterator(dir)) {
    paths.push_back(e.path().string());
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_EQ(paths.size(), 3u);
  std::string bytes = read_file(paths.back());
  bytes[bytes.size() / 2] ^= 0x5a;
  write_file(paths.back(), bytes);

  DocumentStore reopened(opts);
  EXPECT_EQ(reopened.rejected_segments(), 1u);
  EXPECT_EQ(reopened.segment_count(), 2u);
  EXPECT_EQ(reopened.size(), 8u);  // two intact segments of four
  for (uint64_t id = 0; id < 8; ++id) {
    auto got = reopened.get(id);
    ASSERT_TRUE(got.has_value()) << "id " << id;
    EXPECT_EQ(got->get_string("source"), "web");
    EXPECT_EQ(got->find("ts")->as_int(), static_cast<int64_t>(id));
  }
  // The rejected file is kept on disk for forensics, not deleted.
  EXPECT_TRUE(fs::exists(paths.back()));
  fs::remove_all(dir);
}

// An injected torn write at the flush site persists a prefix at the final
// path; the flush reports failure, the hot tier and prior segments are
// untouched, and the retried flush renames a good segment over the wreck.
TEST(SegmentFile, FlushTornWriteRecoversOnRetry) {
  const std::string dir = test_dir("flush_fault");
  FaultInjector faults(7);
  MetricsRegistry metrics;
  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 0;  // manual flushes only
  opts.auto_compact = false;
  opts.faults = &faults;
  opts.metrics = &metrics;
  DocumentStore store(opts);
  for (int i = 0; i < 4; ++i) store.insert(doc("web", i));
  ASSERT_TRUE(store.flush().ok());
  ASSERT_EQ(store.segment_count(), 1u);

  for (int i = 4; i < 8; ++i) store.insert(doc("db", i));
  FaultSpec torn;
  torn.action = FaultAction::kTornWrite;
  torn.max_triggers = 1;
  faults.arm(kFaultSiteSegmentFlush, torn);
  Status s = store.flush();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(faults.triggered(kFaultSiteSegmentFlush), 1u);
  // Nothing was lost: the hot docs are still hot, the first segment still
  // answers, and a full query sees all eight documents.
  EXPECT_EQ(store.hot_count(), 4u);
  EXPECT_EQ(store.size(), 8u);
  EXPECT_EQ(store.count(Query{}), 8u);

  // The torn file sits at the final path and a cold reopen must reject it
  // (losing only the unflushed docs, as a real crash would).
  {
    DocumentStore crashed(opts);
    EXPECT_EQ(crashed.rejected_segments(), 1u);
    EXPECT_EQ(crashed.size(), 4u);
  }

  // The live store's retry renames a complete segment over the torn file.
  ASSERT_TRUE(store.flush().ok());
  EXPECT_EQ(store.hot_count(), 0u);
  EXPECT_EQ(store.segment_count(), 2u);
  EXPECT_EQ(store.count(Query{}), 8u);
  EXPECT_EQ(metrics.counter("loglens_storage_flushes_total",
                            {{"store", "docs"}})
                .value(),
            2u);

  // kThrow at the same site: status error, no file side effects. The
  // trigger cap is cumulative per site (one spent by the torn write).
  for (int i = 8; i < 10; ++i) store.insert(doc("edge", i));
  FaultSpec die;
  die.action = FaultAction::kThrow;
  die.max_triggers = 2;
  faults.arm(kFaultSiteSegmentFlush, die);
  EXPECT_FALSE(store.flush().ok());
  EXPECT_EQ(store.hot_count(), 2u);
  ASSERT_TRUE(store.flush().ok());
  EXPECT_EQ(store.size(), 10u);
  fs::remove_all(dir);
}

// A fault mid-compaction (throw or torn tmp) leaves every input segment
// untouched; the retry merges them and ids stay stable throughout.
TEST(SegmentFile, CompactionFaultLeavesInputsUntouched) {
  const std::string dir = test_dir("compact_fault");
  FaultInjector faults(11);
  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 3;
  opts.auto_compact = false;
  opts.faults = &faults;
  DocumentStore store(opts);
  for (int i = 0; i < 9; ++i) store.insert(doc("cache", i));
  ASSERT_TRUE(store.flush().ok());
  ASSERT_EQ(store.segment_count(), 3u);

  FaultSpec torn;
  torn.action = FaultAction::kTornWrite;
  torn.max_triggers = 1;
  faults.arm(kFaultSiteStorageCompact, torn);
  EXPECT_FALSE(store.compact().ok());
  EXPECT_EQ(store.segment_count(), 3u);
  EXPECT_EQ(store.size(), 9u);

  FaultSpec die;  // cumulative cap: one trigger already spent by the tear
  die.action = FaultAction::kThrow;
  die.max_triggers = 2;
  faults.arm(kFaultSiteStorageCompact, die);
  EXPECT_FALSE(store.compact().ok());
  EXPECT_EQ(store.segment_count(), 3u);

  ASSERT_TRUE(store.compact().ok());
  EXPECT_EQ(store.segment_count(), 1u);
  EXPECT_EQ(store.size(), 9u);
  for (uint64_t id = 0; id < 9; ++id) {
    auto got = store.get(id);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->find("ts")->as_int(), static_cast<int64_t>(id));
  }
  // No stranded merge tmp survives the successful retry's overwrite+rename.
  for (const auto& e : fs::directory_iterator(dir)) {
    EXPECT_EQ(e.path().extension().string(), ".llseg") << e.path();
  }
  fs::remove_all(dir);
}

// Zone maps prune segments whose integer range cannot intersect the query;
// dictionary misses prune segments that never saw the term. QueryStats makes
// both observable, and turning zone pruning off restores the full scan.
TEST(SegmentQuery, ZoneMapAndDictionaryPruning) {
  const std::string dir = test_dir("prune");
  MetricsRegistry metrics;
  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 0;
  opts.auto_compact = false;
  opts.metrics = &metrics;
  DocumentStore store(opts);
  // Three sealed segments with disjoint time ranges and distinct sources.
  const char* sources[] = {"alpha", "beta", "gamma"};
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 50; ++i) {
      store.insert(doc(sources[s], s * 1000 + i));
    }
    ASSERT_TRUE(store.flush().ok());
  }
  ASSERT_EQ(store.segment_count(), 3u);

  Query mid;
  mid.clauses.push_back(QueryClause::Range("ts", 1000, 1049));
  QueryStats stats;
  auto hits = store.query(mid, &stats);
  EXPECT_EQ(hits.size(), 50u);
  EXPECT_EQ(stats.segments_considered, 3u);
  EXPECT_EQ(stats.segments_pruned, 2u);
  EXPECT_EQ(stats.docs_scanned, 50u);  // only the matching segment's rows
  EXPECT_EQ(metrics
                .counter("loglens_storage_segments_pruned_total",
                         {{"store", "docs"}})
                .value(),
            2u);

  Query term;
  term.clauses.push_back(QueryClause::Term("source", "beta"));
  stats = QueryStats{};
  EXPECT_EQ(store.count(term, &stats), 50u);
  EXPECT_EQ(stats.segments_pruned, 2u);  // dictionary miss in alpha/gamma

  Query absent;
  absent.clauses.push_back(QueryClause::Term("no_such_field", "x"));
  stats = QueryStats{};
  EXPECT_EQ(store.count(absent, &stats), 0u);
  EXPECT_EQ(stats.segments_pruned, 3u);
  EXPECT_EQ(stats.docs_scanned, 0u);

  // Same store, zone pruning off: every segment is scanned but results are
  // identical — pruning is an optimization, never a filter.
  DocumentStoreOptions raw = opts;
  raw.zone_map_pruning = false;
  raw.metrics = &metrics;
  DocumentStore unpruned(raw);
  ASSERT_EQ(unpruned.size(), 150u);
  stats = QueryStats{};
  auto raw_hits = unpruned.query(mid, &stats);
  EXPECT_EQ(raw_hits.size(), 50u);
  EXPECT_EQ(stats.segments_pruned, 0u);
  EXPECT_EQ(stats.docs_scanned, 150u);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].dump(), raw_hits[i].dump());
  }

  // Gauges reflect the sealed/hot split.
  EXPECT_EQ(
      metrics.gauge("loglens_storage_segments", {{"store", "docs"}}).value(),
      3);
  EXPECT_EQ(
      metrics.gauge("loglens_storage_hot_docs", {{"store", "docs"}}).value(),
      0);
  fs::remove_all(dir);
}

// sequential_scan mode bypasses columns entirely (the benchmark baseline);
// it must produce byte-identical results to the indexed path.
TEST(SegmentQuery, SequentialScanMatchesIndexedScan) {
  const std::string dir = test_dir("seq");
  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 16;
  opts.auto_compact = false;
  DocumentStore indexed(opts);
  for (int i = 0; i < 100; ++i) {
    indexed.insert(doc(i % 3 == 0 ? "web" : "db", i));
  }
  ASSERT_TRUE(indexed.flush().ok());

  DocumentStoreOptions seq = opts;
  seq.sequential_scan = true;
  DocumentStore scanner(seq);
  ASSERT_EQ(scanner.size(), 100u);

  Query q;
  q.clauses.push_back(QueryClause::Term("source", "web"));
  q.clauses.push_back(QueryClause::Range("ts", 10, 80));
  QueryStats istats, sstats;
  auto a = indexed.query(q, &istats);
  auto b = scanner.query(q, &sstats);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].dump(), b[i].dump());
  EXPECT_EQ(sstats.docs_scanned, 100u);          // full scan by construction
  EXPECT_LT(istats.docs_scanned, sstats.docs_scanned);
  fs::remove_all(dir);
}

// clear() unlinks every segment file and resets ids to zero — recover()'s
// exactly-once rebuild depends on a cleared store starting truly empty.
TEST(SegmentFile, ClearRemovesFilesAndResetsIds) {
  const std::string dir = test_dir("clear");
  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 2;
  DocumentStore store(opts);
  for (int i = 0; i < 7; ++i) store.insert(doc("web", i));
  ASSERT_GE(store.segment_count(), 1u);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.segment_count(), 0u);
  size_t files = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    (void)e;
    ++files;
  }
  EXPECT_EQ(files, 0u);
  EXPECT_EQ(store.insert(doc("web", 0)), 0u);  // ids restart at zero
  DocumentStore reopened(opts);
  EXPECT_EQ(reopened.size(), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace loglens
