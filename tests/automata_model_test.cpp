#include "automata/model.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

ParsedLog elog(int pattern, const std::string& id, int64_t ts,
               const char* id_field = nullptr) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  std::string field = id_field != nullptr
                          ? id_field
                          : "P" + std::to_string(pattern) + "F1";
  log.fields.emplace_back(field, Json(id));
  log.raw = "p" + std::to_string(pattern) + " " + id;
  return log;
}

// Builds a normal corpus: N events of the sequence 1 -> 2(xk) -> 3.
std::vector<ParsedLog> corpus(int events, int min_mid = 1, int max_mid = 1,
                              int64_t step = 100) {
  std::vector<ParsedLog> logs;
  int64_t ts = 1'000'000;
  for (int e = 0; e < events; ++e) {
    std::string id = "ev-" + std::to_string(e);
    logs.push_back(elog(1, id, ts));
    ts += step;
    int mids = min_mid + (max_mid > min_mid ? e % (max_mid - min_mid + 1) : 0);
    for (int m = 0; m < mids; ++m) {
      logs.push_back(elog(2, id, ts));
      ts += step;
    }
    logs.push_back(elog(3, id, ts));
    ts += step;
  }
  return logs;
}

TEST(Learner, SingleAutomatonShape) {
  SequenceModel model = learn_sequence_model(corpus(10));
  ASSERT_EQ(model.automata.size(), 1u);
  const Automaton& a = model.automata[0];
  EXPECT_TRUE(a.begin_patterns.contains(1));
  EXPECT_TRUE(a.end_patterns.contains(3));
  ASSERT_EQ(a.states.size(), 3u);
  EXPECT_EQ(a.states.at(2).min_occurrences, 1);
  EXPECT_EQ(a.states.at(2).max_occurrences, 1);
  EXPECT_EQ(a.training_instances, 10u);
  // 1 begin + 1 mid + 1 end, step 100 => duration 200 for every instance.
  EXPECT_EQ(a.min_duration_ms, 200);
  EXPECT_EQ(a.max_duration_ms, 200);
}

TEST(Learner, OccurrenceBoundsAreTightest) {
  SequenceModel model = learn_sequence_model(corpus(10, 1, 3));
  ASSERT_EQ(model.automata.size(), 1u);
  const Automaton& a = model.automata[0];
  EXPECT_EQ(a.states.at(2).min_occurrences, 1);
  EXPECT_EQ(a.states.at(2).max_occurrences, 3);
  EXPECT_EQ(a.min_duration_ms, 200);
  EXPECT_EQ(a.max_duration_ms, 400);
}

TEST(Learner, TransitionsRecorded) {
  SequenceModel model = learn_sequence_model(corpus(5, 2, 2));
  ASSERT_EQ(model.automata.size(), 1u);
  const auto& t = model.automata[0].transitions;
  EXPECT_TRUE(t.contains({1, 2}));
  EXPECT_TRUE(t.contains({2, 2}));
  EXPECT_TRUE(t.contains({2, 3}));
  EXPECT_FALSE(t.contains({1, 3}));
  EXPECT_FALSE(t.contains({3, 1}));
}

TEST(Learner, TransitionsOptional) {
  LearnerOptions opts;
  opts.learn_transitions = false;
  SequenceModel model = learn_sequence_model(corpus(5), opts);
  ASSERT_EQ(model.automata.size(), 1u);
  EXPECT_TRUE(model.automata[0].transitions.empty());
}

TEST(Learner, DistinctPatternSetsFormDistinctAutomata) {
  // Type A: 1->2->3 keyed by P?F1; type B: 4->5 keyed similarly.
  std::vector<ParsedLog> logs = corpus(6);
  int64_t ts = 5'000'000;
  for (int e = 0; e < 6; ++e) {
    std::string id = "tx-" + std::to_string(e);
    logs.push_back(elog(4, id, ts));
    logs.push_back(elog(5, id, ts + 50));
    ts += 1000;
  }
  SequenceModel model = learn_sequence_model(logs);
  ASSERT_EQ(model.automata.size(), 2u);
  // Deterministic ids by pattern-set order.
  EXPECT_EQ(model.automata[0].id, 1);
  EXPECT_EQ(model.automata[1].id, 2);
  EXPECT_TRUE(model.automata[0].states.contains(1));
  EXPECT_TRUE(model.automata[1].states.contains(4));
}

TEST(Learner, LogsWithoutIdFieldExcluded) {
  auto logs = corpus(5);
  ParsedLog stray;
  stray.pattern_id = 99;
  stray.fields.emplace_back("note", Json("no id here"));
  logs.push_back(stray);
  SequenceModel model = learn_sequence_model(logs);
  EXPECT_EQ(model.automata.size(), 1u);
  EXPECT_FALSE(model.id_fields.contains(99));
}

TEST(AutomatonSerde, JsonRoundTrip) {
  SequenceModel model = learn_sequence_model(corpus(8, 1, 2));
  ASSERT_FALSE(model.automata.empty());
  Json j = model.to_json();
  auto back = SequenceModel::from_json(j);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back.value(), model);
  // And the JSON itself survives a text round trip.
  auto text = Json::parse(j.dump());
  ASSERT_TRUE(text.ok());
  auto back2 = SequenceModel::from_json(text.value());
  ASSERT_TRUE(back2.ok());
  EXPECT_EQ(back2.value(), model);
}

TEST(AutomatonSerde, RejectsGarbage) {
  EXPECT_FALSE(SequenceModel::from_json(Json("string")).ok());
  EXPECT_FALSE(Automaton::from_json(Json(JsonArray{})).ok());
}

TEST(Automaton, PatternSetSorted) {
  Automaton a;
  a.states[3] = {3, 1, 1};
  a.states[1] = {1, 1, 1};
  a.states[2] = {2, 1, 1};
  EXPECT_EQ(a.pattern_set(), (std::vector<int>{1, 2, 3}));
}

TEST(Automaton, DescribeRendersRules) {
  SequenceModel model = learn_sequence_model(corpus(8, 1, 2));
  ASSERT_EQ(model.automata.size(), 1u);
  std::string text = model.automata[0].describe();
  EXPECT_NE(text.find("automaton 1: 3 states, 8 training instances"),
            std::string::npos) << text;
  EXPECT_NE(text.find("begin: { P1 }"), std::string::npos) << text;
  EXPECT_NE(text.find("end: { P3 }"), std::string::npos) << text;
  EXPECT_NE(text.find("P2 x[1,2]"), std::string::npos) << text;
  EXPECT_NE(text.find("duration: [200, 300] ms"), std::string::npos) << text;
  EXPECT_NE(text.find("P1->P2"), std::string::npos) << text;
}

TEST(Learner, EmptyInput) {
  SequenceModel model = learn_sequence_model({});
  EXPECT_TRUE(model.automata.empty());
  EXPECT_TRUE(model.id_fields.empty());
}

}  // namespace
}  // namespace loglens
