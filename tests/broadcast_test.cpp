#include "streaming/broadcast.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace loglens {
namespace {

TEST(Broadcast, InitialValueServedToAllPartitions) {
  Broadcast<std::string> bv(1, "model-v1", 4);
  for (size_t p = 0; p < 4; ++p) {
    auto v = bv.value(p);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(*v, "model-v1");
  }
  // First access per partition is a pull; afterwards it's a cache hit.
  EXPECT_EQ(bv.pulls(), 4u);
  bv.value(0);
  bv.value(0);
  EXPECT_EQ(bv.pulls(), 4u);
  EXPECT_EQ(bv.cache_hits(), 2u);
}

TEST(Broadcast, RebroadcastInvalidatesEveryPartitionCache) {
  Broadcast<std::string> bv(1, "v1", 3);
  for (size_t p = 0; p < 3; ++p) bv.value(p);
  uint64_t pulls_before = bv.pulls();
  bv.update("v2");
  EXPECT_EQ(bv.version(), 1u);
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(*bv.value(p), "v2");
  }
  EXPECT_EQ(bv.pulls(), pulls_before + 3);  // every partition re-pulled
}

TEST(Broadcast, IdentityStableAcrossUpdates) {
  Broadcast<int> bv(42, 1, 2);
  uint64_t id = bv.id();
  bv.update(2);
  bv.update(3);
  EXPECT_EQ(bv.id(), id);  // the paper: same BV id after rebroadcast
  EXPECT_EQ(bv.version(), 2u);
  EXPECT_EQ(*bv.value(0), 3);
}

TEST(Broadcast, OldSharedPtrRemainsValidAfterUpdate) {
  Broadcast<std::string> bv(1, "old", 1);
  auto old = bv.value(0);
  bv.update("new");
  EXPECT_EQ(*old, "old");  // a batch holding the old model keeps it alive
  EXPECT_EQ(*bv.value(0), "new");
}

TEST(Broadcast, ConcurrentReadersDuringUpdates) {
  Broadcast<std::string> bv(1, "a", 8);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (size_t p = 0; p < 8; ++p) {
    readers.emplace_back([&bv, p, &stop] {
      while (!stop.load()) {
        auto v = bv.value(p);
        // Value is always one of the published strings, never torn.
        ASSERT_TRUE(*v == "a" || *v == "b" || *v == "c");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    bv.update(i % 2 == 0 ? "b" : "c");
  }
  stop = true;
  for (auto& t : readers) t.join();
  EXPECT_EQ(bv.version(), 50u);
}

}  // namespace
}  // namespace loglens
