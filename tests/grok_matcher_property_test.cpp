// Property tests pinning the iterative GROK matcher to the semantics of the
// original recursive shortest-first matcher, plus regressions for the two
// pathologies the rewrite removed: exponential wildcard backtracking and
// recursion depth proportional to the pattern length.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "grok/datatype.h"
#include "grok/pattern.h"
#include "grok/token.h"
#include "json/json.h"

namespace loglens {
namespace {

// The pre-rewrite matcher, kept verbatim as the executable specification:
// wildcards consume zero or more tokens, shortest first, with full
// backtracking over every wildcard.
bool reference_match(const GrokPattern& pattern,
                     const std::vector<Token>& tokens,
                     const DatatypeClassifier& classifier, size_t ti,
                     size_t pi, JsonObject* out) {
  const auto& ptoks = pattern.tokens();
  if (pi == ptoks.size()) return ti == tokens.size();
  const GrokToken& pt = ptoks[pi];
  if (!pt.is_field) {
    if (ti < tokens.size() && tokens[ti].text == pt.literal) {
      return reference_match(pattern, tokens, classifier, ti + 1, pi + 1, out);
    }
    return false;
  }
  if (pt.field.type == Datatype::kAnyData) {
    for (size_t take = 0; ti + take <= tokens.size(); ++take) {
      size_t mark = out != nullptr ? out->size() : 0;
      if (out != nullptr) {
        std::string joined;
        for (size_t k = 0; k < take; ++k) {
          if (k > 0) joined += ' ';
          joined += tokens[ti + k].text;
        }
        out->emplace_back(pt.field.name, Json(std::move(joined)));
      }
      if (reference_match(pattern, tokens, classifier, ti + take, pi + 1,
                          out)) {
        return true;
      }
      if (out != nullptr) out->resize(mark);
    }
    return false;
  }
  if (ti >= tokens.size()) return false;
  const Token& tok = tokens[ti];
  bool ok = pt.field.type == Datatype::kDateTime
                ? tok.type == Datatype::kDateTime
                : tok.type != Datatype::kDateTime &&
                      classifier.matches(tok.text, pt.field.type);
  if (!ok) return false;
  size_t mark = out != nullptr ? out->size() : 0;
  if (out != nullptr) out->emplace_back(pt.field.name, Json(tok.text));
  if (reference_match(pattern, tokens, classifier, ti + 1, pi + 1, out)) {
    return true;
  }
  if (out != nullptr) out->resize(mark);
  return false;
}

constexpr const char* kDateTimeText = "2016/02/23 09:00:31.000";

class GrokMatcherProperty : public ::testing::Test {
 protected:
  Token make_token(std::string text) {
    Token t;
    if (text == kDateTimeText) {
      t.type = Datatype::kDateTime;
    } else {
      t.type = classifier_.classify(text);
    }
    t.text = std::move(text);
    return t;
  }

  GrokPattern random_pattern(Rng& rng) {
    static const std::vector<std::string> kLiterals = {"alpha", "beta", "x",
                                                       "42"};
    static const std::vector<Datatype> kFieldTypes = {
        Datatype::kWord,     Datatype::kNumber,   Datatype::kIp,
        Datatype::kNotSpace, Datatype::kDateTime, Datatype::kAnyData,
        Datatype::kAnyData};  // wildcards twice as likely
    std::vector<GrokToken> toks;
    const size_t len = 1 + rng.below(8);
    for (size_t i = 0; i < len; ++i) {
      if (rng.chance(0.4)) {
        toks.push_back(GrokToken::make_literal(rng.pick(kLiterals)));
      } else {
        toks.push_back(GrokToken::make_field(
            rng.pick(kFieldTypes), "f" + std::to_string(toks.size())));
      }
    }
    return GrokPattern(std::move(toks));
  }

  std::vector<Token> random_log(Rng& rng) {
    static const std::vector<std::string> kTexts = {
        "alpha", "beta", "x",      "42",   "7.5",
        "hello", "a1b2", "10.0.0.7", kDateTimeText};
    std::vector<Token> toks;
    const size_t len = rng.below(12);
    for (size_t i = 0; i < len; ++i) {
      toks.push_back(make_token(rng.pick(kTexts)));
    }
    return toks;
  }

  DatatypeClassifier classifier_;
};

TEST_F(GrokMatcherProperty, AgreesWithRecursiveReferenceOnRandomInputs) {
  Rng rng(20260805);
  GrokMatchScratch scratch;
  size_t matched = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    GrokPattern pattern = random_pattern(rng);
    std::vector<Token> log = random_log(rng);

    JsonObject want;
    bool want_ok =
        reference_match(pattern, log, classifier_, 0, 0, &want);
    JsonObject got;
    bool got_ok = pattern.match_into(log, classifier_, &got, scratch);

    ASSERT_EQ(want_ok, got_ok)
        << "pattern: " << pattern.to_string() << " iter " << iter;
    ASSERT_EQ(want_ok, pattern.match(log, classifier_))
        << "bool-only overload diverges: " << pattern.to_string();
    if (want_ok) {
      ++matched;
      ASSERT_EQ(Json(want), Json(got))
          << "pattern: " << pattern.to_string() << " iter " << iter;
    }
  }
  // Sanity: the generator produces a healthy mix of matches and misses.
  EXPECT_GT(matched, 100u);
}

TEST_F(GrokMatcherProperty, MultiWildcardCapturesAreLazyLeftToRight) {
  // Earlier wildcards take as few tokens as possible: a="", b="sep".
  auto pattern =
      GrokPattern::parse("%{ANYDATA:a} sep %{ANYDATA:b}").value();
  std::vector<Token> log = {make_token("sep"), make_token("sep")};
  GrokMatchScratch scratch;
  JsonObject out;
  ASSERT_TRUE(pattern.match_into(log, classifier_, &out, scratch));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second.as_string(), "");
  EXPECT_EQ(out[1].second.as_string(), "sep");
}

TEST_F(GrokMatcherProperty, SlotReuseOverwritesStaleFields) {
  // A smaller match after a larger one must shrink the output object.
  auto big =
      GrokPattern::parse("%{WORD:a} %{NUMBER:b} %{WORD:c}").value();
  auto small = GrokPattern::parse("%{WORD:only}").value();
  std::vector<Token> log3 = {make_token("alpha"), make_token("42"),
                             make_token("beta")};
  std::vector<Token> log1 = {make_token("hello")};
  GrokMatchScratch scratch;
  JsonObject out;
  ASSERT_TRUE(big.match_into(log3, classifier_, &out, scratch));
  ASSERT_EQ(out.size(), 3u);
  ASSERT_TRUE(small.match_into(log1, classifier_, &out, scratch));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, "only");
  EXPECT_EQ(out[0].second.as_string(), "hello");
}

TEST_F(GrokMatcherProperty, FailedMatchLeavesOutputUntouched) {
  auto pattern = GrokPattern::parse("%{NUMBER:n}").value();
  std::vector<Token> log = {make_token("alpha")};
  GrokMatchScratch scratch;
  JsonObject out;
  out.emplace_back("keep", Json("me"));
  ASSERT_FALSE(pattern.match_into(log, classifier_, &out, scratch));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].first, "keep");
}

TEST_F(GrokMatcherProperty, AdversarialWildcardsFinishWithinQuadraticBudget) {
  // Three wildcards anchored on a token that appears everywhere, against a
  // 200-token log the pattern cannot match. The recursive matcher explored
  // an exponential number of take-combinations here; the iterative one is
  // bounded by pattern-length * log-length.
  auto trailing = GrokPattern::parse(
                      "%{ANYDATA:a} alpha %{ANYDATA:b} zzz %{ANYDATA:c}")
                      .value();
  std::vector<Token> log;
  for (int i = 0; i < 200; ++i) log.push_back(make_token("alpha"));
  GrokMatchScratch scratch;
  EXPECT_FALSE(trailing.match_into(log, classifier_, nullptr, scratch));
  EXPECT_LT(scratch.steps, 10'000u);
}

TEST_F(GrokMatcherProperty, UnmatchableTailFailsBeforeWildcardWork) {
  // The fixed suffix after the last wildcard is anchored right-aligned
  // first, so the impossible trailing literal rejects in O(suffix).
  auto pattern = GrokPattern::parse(
                     "%{ANYDATA:a} alpha %{ANYDATA:b} alpha %{ANYDATA:c} "
                     "alpha zzz")
                     .value();
  std::vector<Token> log;
  for (int i = 0; i < 200; ++i) log.push_back(make_token("alpha"));
  GrokMatchScratch scratch;
  EXPECT_FALSE(pattern.match_into(log, classifier_, nullptr, scratch));
  EXPECT_LT(scratch.steps, 10u);
}

TEST_F(GrokMatcherProperty, DeepPatternsNeedNoRecursionStack) {
  // 200k single-token fields: the recursive matcher would overflow the
  // stack (one frame per pattern token); the iterative one is flat.
  const size_t kDepth = 200'000;
  std::vector<GrokToken> ptoks;
  ptoks.reserve(kDepth);
  std::vector<Token> log;
  log.reserve(kDepth);
  for (size_t i = 0; i < kDepth; ++i) {
    ptoks.push_back(GrokToken::make_field(Datatype::kNotSpace,
                                          "f" + std::to_string(i)));
    log.push_back(make_token("t" + std::to_string(i % 7)));
  }
  GrokPattern pattern(std::move(ptoks));
  GrokMatchScratch scratch;
  JsonObject out;
  ASSERT_TRUE(pattern.match_into(log, classifier_, &out, scratch));
  EXPECT_EQ(out.size(), kDepth);
}

}  // namespace
}  // namespace loglens
