#include "service/heartbeat.h"

#include <gtest/gtest.h>

#include "service/wire.h"

namespace loglens {
namespace {

Message parsed(const char* source, int64_t ts) {
  Message m;
  m.key = source;
  m.value = "{}";
  m.timestamp_ms = ts;
  m.tag = kTagData;
  m.source = source;
  return m;
}

TEST(Heartbeat, EmitsOnePerActiveSource) {
  Broker broker;
  broker.create_topic("parsed", 1);
  HeartbeatController hb(broker, {"parsed", "parsed", 1000});
  broker.produce("parsed", parsed("A", 1000));
  broker.produce("parsed", parsed("B", 2000));
  EXPECT_EQ(hb.tick(), 2u);
  EXPECT_EQ(hb.active_sources(), 2u);
  // The heartbeats are now in the topic, tagged.
  auto all = broker.fetch("parsed", 0, 2, 10);
  ASSERT_EQ(all.size(), 2u);
  for (const auto& m : all) EXPECT_EQ(m.tag, kTagHeartbeat);
}

TEST(Heartbeat, CarriesObservedLogTimeWhileActive) {
  Broker broker;
  broker.create_topic("parsed", 1);
  HeartbeatController hb(broker, {"parsed", "parsed", 1000});
  broker.produce("parsed", parsed("A", 5000));
  hb.tick();
  auto msgs = broker.fetch("parsed", 0, 1, 10);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].timestamp_ms, 5000);
  EXPECT_EQ(msgs[0].source, "A");
}

TEST(Heartbeat, ExtrapolatesWhenSourceGoesQuiet) {
  Broker broker;
  broker.create_topic("parsed", 1);
  HeartbeatController hb(broker, {"parsed", "parsed", 1000});
  // Establish a rate: 10 logs, 100ms apart, in one tick window.
  for (int i = 0; i < 10; ++i) {
    broker.produce("parsed", parsed("A", 1000 + i * 100));
  }
  hb.tick();  // observes; predicted = 1900
  uint64_t offset = broker.end_offset("parsed", 0);
  // Quiet ticks: predicted time must advance monotonically.
  hb.tick();
  hb.tick();
  auto msgs = broker.fetch("parsed", 0, offset, 10);
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_GT(msgs[0].timestamp_ms, 1900);
  EXPECT_GT(msgs[1].timestamp_ms, msgs[0].timestamp_ms);
}

TEST(Heartbeat, MinAdvanceBoundsQuietExtrapolation) {
  Broker broker;
  broker.create_topic("parsed", 1);
  HeartbeatController hb(broker, {"parsed", "parsed", 60'000});
  broker.produce("parsed", parsed("A", 1000));
  hb.tick();
  uint64_t offset = broker.end_offset("parsed", 0);
  hb.tick();  // quiet: advance >= 60s
  auto msgs = broker.fetch("parsed", 0, offset, 10);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_GE(msgs[0].timestamp_ms, 61'000);
}

TEST(Heartbeat, TickAdvanceForcesLogTimeForward) {
  Broker broker;
  broker.create_topic("parsed", 1);
  HeartbeatController hb(broker, {"parsed", "parsed", 1000});
  broker.produce("parsed", parsed("A", 10'000));
  EXPECT_EQ(hb.tick_advance(500'000), 1u);
  auto msgs = broker.fetch("parsed", 0, 1, 10);
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].timestamp_ms, 510'000);
}

TEST(Heartbeat, IgnoresNonDataMessages) {
  Broker broker;
  broker.create_topic("parsed", 1);
  HeartbeatController hb(broker, {"parsed", "parsed", 1000});
  Message anomaly;
  anomaly.tag = kTagAnomaly;
  anomaly.source = "A";
  anomaly.timestamp_ms = 1;
  broker.produce("parsed", anomaly);
  Message own_hb;
  own_hb.tag = kTagHeartbeat;
  own_hb.source = "B";
  own_hb.timestamp_ms = 2;
  broker.produce("parsed", own_hb);
  EXPECT_EQ(hb.tick(), 0u);  // no *data* sources observed
  EXPECT_EQ(hb.active_sources(), 0u);
}

TEST(Heartbeat, NoSourcesNoHeartbeats) {
  Broker broker;
  broker.create_topic("parsed", 1);
  HeartbeatController hb(broker, {"parsed", "parsed", 1000});
  EXPECT_EQ(hb.tick(), 0u);
  EXPECT_EQ(hb.tick_advance(1000), 0u);
}

}  // namespace
}  // namespace loglens
