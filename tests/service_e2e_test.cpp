// End-to-end pipeline tests: agent -> log manager -> parser stage ->
// detector stage -> anomaly store, with heartbeats and live model updates.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>

#include "datagen/datasets.h"
#include "service/service.h"

namespace loglens {
namespace {

ServiceOptions d1_options() {
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  return opts;
}

// Streams the test corpus, then advances log time far enough to expire any
// open event.
void run_test_stream(LogLensService& service, Agent& agent,
                     const Dataset& ds, bool heartbeats) {
  agent.replay(ds.testing);
  service.drain();
  if (heartbeats) {
    service.heartbeat_advance(24L * 3600 * 1000);
    service.drain();
  }
}

std::set<std::string> anomalous_ids(const AnomalyStore& store) {
  std::set<std::string> ids;
  for (const auto& a : store.all()) {
    if (!a.event_id.empty()) ids.insert(a.event_id);
  }
  return ids;
}

TEST(ServiceE2E, Fig4AccuracyOnD1) {
  Dataset d1 = make_d1(0.05);
  LogLensService service(d1_options());
  BuildResult build = service.train(d1.training);
  ASSERT_EQ(build.unparsed_training_logs, 0u);
  Agent agent = service.make_agent("D1");
  run_test_stream(service, agent, d1, /*heartbeats=*/true);

  // 100% recall at event granularity, no false positives.
  EXPECT_EQ(anomalous_ids(service.anomalies()), d1.anomalous_event_ids);
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kUnparsedLog), 0u);
}

TEST(ServiceE2E, Fig5HeartbeatGapOnD1) {
  Dataset d1 = make_d1(0.05);
  // Without heartbeats the missing-end event is never reported.
  LogLensService no_hb(d1_options());
  no_hb.train(d1.training);
  Agent agent1 = no_hb.make_agent("D1");
  run_test_stream(no_hb, agent1, d1, /*heartbeats=*/false);
  auto without = anomalous_ids(no_hb.anomalies());
  EXPECT_EQ(without.size(),
            d1.anomalous_event_ids.size() - d1.missing_end_event_ids.size());
  for (const auto& id : d1.missing_end_event_ids) {
    EXPECT_FALSE(without.contains(id));
  }
  EXPECT_GT(no_hb.open_events(), 0u);  // the stuck open state is still there
}

TEST(ServiceE2E, TableVModelUpdateWithoutRestart) {
  Dataset d1 = make_d1(0.05);
  LogLensService service(d1_options());
  BuildResult build = service.train(d1.training);
  ASSERT_EQ(build.model.sequence.automata.size(), 2u);

  // Delete the "txn" automaton (the 3-state one — event type 2) through the
  // model manager, mid-service, no restart.
  ASSERT_TRUE(service.models()
                  .edit(service.model_name(),
                        [](CompositeModel& m) {
                          std::erase_if(m.sequence.automata,
                                        [](const Automaton& a) {
                                          return a.states.size() == 3;
                                        });
                        })
                  .ok());
  Agent agent = service.make_agent("D1");
  run_test_stream(service, agent, d1, /*heartbeats=*/true);

  // Only the 13 anomalies of automaton 1's event type remain.
  std::set<std::string> expected;
  for (const auto& [id, type] : d1.anomaly_event_types) {
    if (type == 1) expected.insert(id);
  }
  EXPECT_EQ(expected.size(), 13u);
  EXPECT_EQ(anomalous_ids(service.anomalies()), expected);
}

TEST(ServiceE2E, UnparsedLogsReportedAsStatelessAnomalies) {
  Dataset d1 = make_d1(0.02);
  LogLensService service(d1_options());
  service.train(d1.training);
  Agent agent = service.make_agent("D1");
  agent.send_line("totally unknown log format &&& 123");
  agent.send_line("another stranger");
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kUnparsedLog), 2u);
  auto stored = service.anomalies().by_type(AnomalyType::kUnparsedLog);
  ASSERT_EQ(stored[0].logs.size(), 1u);
  EXPECT_EQ(stored[0].logs[0], "totally unknown log format &&& 123");
  EXPECT_EQ(stored[0].source, "D1");
}

TEST(ServiceE2E, LogManagerArchivesEverything) {
  Dataset d1 = make_d1(0.02);
  LogLensService service(d1_options());
  service.train(d1.training);
  Agent agent = service.make_agent("D1");
  agent.replay(d1.testing);
  service.drain();
  EXPECT_EQ(service.log_store().size(), d1.testing.size());
  EXPECT_TRUE(service.log_manager().sources().contains("D1"));
  EXPECT_EQ(service.log_store().fetch("D1").size(), d1.testing.size());
}

TEST(ServiceE2E, BackgroundModeMatchesDrainMode) {
  Dataset d1 = make_d1(0.02);

  LogLensService sync_service(d1_options());
  sync_service.train(d1.training);
  Agent a1 = sync_service.make_agent("D1");
  run_test_stream(sync_service, a1, d1, true);

  LogLensService async_service(d1_options());
  async_service.train(d1.training);
  async_service.start();
  Agent a2 = async_service.make_agent("D1");
  a2.replay(d1.testing);
  // Move logs through ingest while the runners work in the background.
  for (int i = 0;
       i < 200 && async_service.log_store().size() < d1.testing.size(); ++i) {
    async_service.log_manager().pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  // Quiesce, then expire open states deterministically.
  async_service.stop();
  async_service.heartbeat_advance(24L * 3600 * 1000);
  async_service.drain();

  EXPECT_EQ(anomalous_ids(sync_service.anomalies()),
            anomalous_ids(async_service.anomalies()));
}

TEST(ServiceE2E, Fig4AccuracyOnD2) {
  Dataset d2 = make_d2(0.05);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D2");
  LogLensService service(opts);
  BuildResult build = service.train(d2.training);
  ASSERT_EQ(build.unparsed_training_logs, 0u);
  ASSERT_EQ(build.model.sequence.automata.size(), 3u);
  Agent agent = service.make_agent("D2");
  run_test_stream(service, agent, d2, true);
  EXPECT_EQ(anomalous_ids(service.anomalies()), d2.anomalous_event_ids);
}

}  // namespace
}  // namespace loglens
