// Tracing subsystem unit tests: the SPSC span ring, context propagation,
// the clock shim, the registry's span path, report attribution, and the
// Chrome trace-event export.
#include "trace/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "json/json.h"
#include "metrics/metrics.h"
#include "trace/report.h"

namespace loglens {
namespace {

// Every test in this file runs with tracing on and restores the switch, so
// test order (and a developer's LOGLENS_TRACE) cannot leak between cases.
class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : was_enabled_(trace::enabled()) { trace::set_enabled(true); }
  ~TraceTest() override { trace::set_enabled(was_enabled_); }

 private:
  bool was_enabled_;
};

trace::Span make_span(const std::string& name, uint64_t span_id,
                      uint64_t parent, uint64_t start_us,
                      uint64_t duration_us, uint64_t trace_id = 1) {
  trace::Span s;
  s.trace_id = trace_id;
  s.span_id = span_id;
  s.parent_id = parent;
  s.start_us = start_us;
  s.duration_us = duration_us;
  s.name = name;
  return s;
}

TEST_F(TraceTest, IdGeneratorsNeverReturnZero) {
  uint64_t prev_trace = trace::new_trace_id();
  uint64_t prev_span = trace::new_span_id();
  EXPECT_NE(prev_trace, 0u);
  EXPECT_NE(prev_span, 0u);
  for (int i = 0; i < 100; ++i) {
    uint64_t t = trace::new_trace_id();
    uint64_t s = trace::new_span_id();
    EXPECT_GT(t, prev_trace);
    EXPECT_GT(s, prev_span);
    prev_trace = t;
    prev_span = s;
  }
}

TEST_F(TraceTest, ContextScopesNestAndRestore) {
  EXPECT_EQ(trace::current().trace_id, 0u);
  trace::TraceContext outer{7, 70, 1};
  {
    trace::ContextScope a(outer);
    EXPECT_EQ(trace::current().trace_id, 7u);
    EXPECT_EQ(trace::current().span_id, 70u);
    {
      trace::TraceContext inner{8, 80, 2};
      trace::ContextScope b(inner);
      EXPECT_EQ(trace::current().trace_id, 8u);
      EXPECT_EQ(trace::current().batch, 2);
    }
    EXPECT_EQ(trace::current().trace_id, 7u);
    EXPECT_EQ(trace::current().batch, 1);
  }
  EXPECT_EQ(trace::current().trace_id, 0u);
}

TEST_F(TraceTest, ClockShimUsesInstalledSource) {
  trace_clock::set_source(+[]() -> uint64_t { return 12345; });
  EXPECT_EQ(trace_clock::now_us(), 12345u);
  trace_clock::set_source(nullptr);
  uint64_t a = trace_clock::now_us();
  uint64_t b = trace_clock::now_us();
  EXPECT_LE(a, b);  // real clock is monotonic again
}

TEST_F(TraceTest, SpanBufferDrainsInFifoOrder) {
  trace::SpanBuffer buffer(8);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(buffer.push(make_span("s" + std::to_string(i), i + 1, 0,
                                      i * 10, 5)));
  }
  std::vector<trace::Span> out;
  buffer.drain_into(out);
  ASSERT_EQ(out.size(), 5u);
  for (uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i].name, "s" + std::to_string(i));
  }
  EXPECT_EQ(buffer.dropped(), 0u);

  // Drained slots are reusable.
  EXPECT_TRUE(buffer.push(make_span("again", 99, 0, 0, 1)));
  out.clear();
  buffer.drain_into(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].name, "again");
}

TEST_F(TraceTest, SpanBufferFullDropsNewestAndCounts) {
  trace::SpanBuffer buffer(4);
  EXPECT_EQ(buffer.capacity(), 4u);
  size_t accepted = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    if (buffer.push(make_span("s" + std::to_string(i), i + 1, 0, i, 1))) {
      ++accepted;
    }
  }
  EXPECT_EQ(buffer.dropped(), 10 - accepted);
  EXPECT_GT(buffer.dropped(), 0u);
  std::vector<trace::Span> out;
  buffer.drain_into(out);
  EXPECT_EQ(out.size(), accepted);
  // Drop-newest: the survivors are the oldest pushes, in order.
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].name, "s" + std::to_string(i));
  }
}

TEST_F(TraceTest, CollectorRoundTripsSpans) {
  trace::SpanCollector collector;
  for (uint64_t i = 0; i < 20; ++i) {
    collector.record(make_span("c" + std::to_string(i), i + 1, 0, i, 1));
  }
  auto drained = collector.drain();
  ASSERT_EQ(drained.size(), 20u);
  EXPECT_EQ(drained.front().name, "c0");
  EXPECT_EQ(drained.back().name, "c19");
  EXPECT_EQ(collector.dropped(), 0u);
  EXPECT_TRUE(collector.drain().empty());
}

TEST_F(TraceTest, RegistryRecordSpanInheritsCurrentContext) {
  MetricsRegistry registry;
  trace::TraceContext ctx;
  ctx.trace_id = 42;
  ctx.span_id = 420;
  ctx.batch = 3;
  trace::ContextScope scope(ctx);
  registry.record_span("hop", 100, 50);
  auto spans = registry.take_trace_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "hop");
  EXPECT_EQ(spans[0].trace_id, 42u);
  EXPECT_EQ(spans[0].parent_id, 420u);
  EXPECT_EQ(spans[0].batch, 3);
  EXPECT_NE(spans[0].span_id, 0u);
  EXPECT_EQ(registry.spans_dropped(), 0u);
}

TEST_F(TraceTest, DisabledTracingRecordsNothing) {
  MetricsRegistry registry;
  trace::set_enabled(false);
  registry.record_span("invisible", 0, 1);
  registry.record_span(make_span("also-invisible", 1, 0, 0, 1));
  trace::set_enabled(true);
  EXPECT_TRUE(registry.take_trace_spans().empty());
  registry.record_span("visible", 0, 1);
  EXPECT_EQ(registry.take_trace_spans().size(), 1u);
}

// The attribution contract the bench gate enforces: pipeline children sum
// into components, the engine batch decomposes into phases, and unclassified
// children (e.g. the downstream stage's chained pipeline span, or the sink
// flush) do not inflate the attributed time.
TEST_F(TraceTest, BuildReportAttributesPipelineComponents) {
  std::vector<trace::Span> spans;
  // parser.pipeline [100, 300), batch 0; queue_wait [40, 100) before it.
  spans.push_back(make_span("parser.pipeline", 10, 0, 100, 200));
  spans.back().batch = 0;
  spans.push_back(make_span("parser.queue_wait", 11, 10, 40, 60));
  spans.push_back(make_span("parser.publish", 12, 10, 280, 20));
  spans.push_back(make_span("parser.batch", 13, 10, 100, 180));
  // Phases under the batch: 10 + 20 + 100 + 10 leaves 40us of batch_other.
  spans.push_back(make_span("parser.control", 14, 13, 100, 10));
  spans.push_back(make_span("parser.route", 15, 13, 110, 20));
  spans.push_back(make_span("parser.exec", 16, 13, 130, 100));
  spans.push_back(make_span("parser.collect", 17, 13, 260, 10));
  // Parallel-section detail under exec (overlaps; informational only).
  spans.push_back(make_span("parser.pool_wait", 18, 16, 130, 5));
  spans.push_back(make_span("parser.task", 19, 16, 135, 90));
  // Children that must NOT be attributed: the downstream pipeline span that
  // chains to this one, and the sink flush.
  spans.push_back(make_span("detector.pipeline", 20, 10, 310, 100));
  spans.back().batch = 0;
  spans.push_back(make_span("sink.flush", 21, 20, 415, 30));

  trace::Report report = trace::build_report(spans, 0);
  EXPECT_EQ(report.span_count, spans.size());
  ASSERT_EQ(report.stages.size(), 2u);  // parser + the chained detector

  const trace::StageReport& parser = report.stages[0];
  EXPECT_EQ(parser.stage, "parser");
  EXPECT_EQ(parser.batches, 1u);
  // total = pipeline end (300) - queue_wait start (40).
  EXPECT_EQ(parser.total_us, 260u);
  // queue_wait 60 + publish 20 + phases 140 + batch_other 40 = 260.
  EXPECT_EQ(parser.attributed_us, 260u);
  EXPECT_DOUBLE_EQ(parser.coverage, 1.0);
  EXPECT_EQ(parser.task_us, 90u);
  EXPECT_EQ(parser.pool_wait_us, 5u);
  uint64_t batch_other = 0;
  for (const auto& comp : parser.components) {
    if (comp.name == "batch_other") batch_other = comp.total_us;
    EXPECT_NE(comp.name, "other");  // fully attributed
  }
  EXPECT_EQ(batch_other, 40u);

  // The detector pipeline had no classified children: everything lands in
  // "other" and nothing is attributed.
  const trace::StageReport& detector = report.stages[1];
  EXPECT_EQ(detector.stage, "detector");
  EXPECT_EQ(detector.total_us, 100u);
  EXPECT_EQ(detector.attributed_us, 0u);
}

TEST_F(TraceTest, FormatReportMentionsDropsAndStages) {
  std::vector<trace::Span> spans;
  spans.push_back(make_span("parser.pipeline", 1, 0, 0, 100));
  trace::Report report = trace::build_report(spans, 7);
  std::string text = trace::format_report(report);
  EXPECT_NE(text.find("stage parser"), std::string::npos);
  EXPECT_NE(text.find("DROPPED"), std::string::npos);
}

TEST_F(TraceTest, ChromeTraceJsonRoundTrips) {
  std::vector<trace::Span> spans;
  spans.push_back(make_span("parser.pipeline", 10, 0, 100, 200, 42));
  spans.back().batch = 5;
  spans.back().tid = 3;
  spans.push_back(make_span("parser.batch", 11, 10, 110, 180, 42));

  std::string dumped = trace::chrome_trace_json(spans).dump();
  auto parsed = Json::parse(dumped);
  ASSERT_TRUE(parsed.ok());
  const Json* events = parsed.value().find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 2u);

  const Json& first = events->as_array()[0];
  EXPECT_EQ(first.find("name")->as_string(), "parser.pipeline");
  EXPECT_EQ(first.find("ph")->as_string(), "X");
  EXPECT_EQ(first.find("cat")->as_string(), "loglens");
  EXPECT_EQ(first.find("ts")->as_int(), 100);
  EXPECT_EQ(first.find("dur")->as_int(), 200);
  EXPECT_EQ(first.find("tid")->as_int(), 3);
  const Json* args = first.find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_EQ(args->find("trace")->as_int(), 42);
  EXPECT_EQ(args->find("span")->as_int(), 10);
  EXPECT_EQ(args->find("parent")->as_int(), 0);
  EXPECT_EQ(args->find("batch")->as_int(), 5);
  EXPECT_EQ(parsed.value().find("displayTimeUnit")->as_string(), "ms");
}

}  // namespace
}  // namespace loglens
