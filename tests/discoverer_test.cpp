#include "logmine/discoverer.h"

#include <gtest/gtest.h>

#include "tokenize/preprocessor.h"

namespace loglens {
namespace {

class DiscovererTest : public ::testing::Test {
 protected:
  DiscovererTest() : pre_(std::move(Preprocessor::create({}).value())) {}

  std::vector<TokenizedLog> tokenize(const std::vector<std::string>& lines) {
    std::vector<TokenizedLog> out;
    for (const auto& l : lines) out.push_back(pre_.process(l));
    return out;
  }

  std::vector<GrokPattern> discover(const std::vector<std::string>& lines,
                                    DiscoveryOptions opts = {}) {
    PatternDiscoverer d(opts, pre_.classifier());
    return d.discover(tokenize(lines));
  }

  Preprocessor pre_;
};

TEST_F(DiscovererTest, DatatypeJoin) {
  EXPECT_EQ(datatype_join(Datatype::kWord, Datatype::kWord), Datatype::kWord);
  EXPECT_EQ(datatype_join(Datatype::kWord, Datatype::kNumber),
            Datatype::kNotSpace);
  EXPECT_EQ(datatype_join(Datatype::kWord, Datatype::kNotSpace),
            Datatype::kNotSpace);
  EXPECT_EQ(datatype_join(Datatype::kIp, Datatype::kNumber),
            Datatype::kNotSpace);
  EXPECT_EQ(datatype_join(Datatype::kDateTime, Datatype::kWord),
            Datatype::kAnyData);
  EXPECT_EQ(datatype_join(Datatype::kAnyData, Datatype::kWord),
            Datatype::kAnyData);
}

TEST_F(DiscovererTest, SingleClusterBecomesOnePattern) {
  // Short logs with 3 variable positions out of 4 sit at distance 0.375,
  // so this test widens the threshold accordingly.
  DiscoveryOptions opts;
  opts.max_dist = 0.45;
  auto patterns = discover(
      {
          "2016/02/23 09:00:31 10.0.0.1 login user1",
          "2016/02/23 09:00:32 10.0.0.2 login user2",
          "2016/02/23 09:00:33 10.0.0.3 login user3",
      },
      opts);
  ASSERT_EQ(patterns.size(), 1u);
  const GrokPattern& p = patterns[0];
  ASSERT_EQ(p.size(), 4u);
  EXPECT_TRUE(p.tokens()[0].is_field);
  EXPECT_EQ(p.tokens()[0].field.type, Datatype::kDateTime);
  EXPECT_TRUE(p.tokens()[1].is_field);
  EXPECT_EQ(p.tokens()[1].field.type, Datatype::kIp);
  EXPECT_FALSE(p.tokens()[2].is_field);  // constant "login"
  EXPECT_EQ(p.tokens()[2].literal, "login");
  EXPECT_TRUE(p.tokens()[3].is_field);
  EXPECT_EQ(p.tokens()[3].field.type, Datatype::kNotSpace);
}

TEST_F(DiscovererTest, TimestampAlwaysBecomesField) {
  // Even when every training log shares the same timestamp text.
  auto patterns = discover({
      "2016/02/23 09:00:31 boot ok",
      "2016/02/23 09:00:31 boot ok",
  });
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_TRUE(patterns[0].tokens()[0].is_field);
  EXPECT_EQ(patterns[0].tokens()[0].field.type, Datatype::kDateTime);
}

TEST_F(DiscovererTest, DistinctShapesYieldDistinctPatterns) {
  auto patterns = discover({
      "alpha begin job j1 on 10.0.0.1",
      "alpha begin job j2 on 10.0.0.2",
      "omega finish task 42 code 0",
      "omega finish task 43 code 1",
      "short line",
  });
  EXPECT_EQ(patterns.size(), 3u);
}

TEST_F(DiscovererTest, DifferentLengthsNeverClusterAtLevelZero) {
  auto patterns = discover({
      "a b c",
      "a b c d",
  });
  EXPECT_EQ(patterns.size(), 2u);
}

TEST_F(DiscovererTest, PatternsParseTheirTrainingLogs) {
  // Property: every training log must be matched by some discovered pattern.
  std::vector<std::string> lines;
  for (int i = 0; i < 50; ++i) {
    lines.push_back("2016/02/23 09:00:" + std::to_string(10 + i % 50) +
                    " 10.0.0." + std::to_string(i % 9 + 1) + " login user" +
                    std::to_string(i));
    lines.push_back("worker " + std::to_string(i) + " heartbeat ok");
  }
  auto patterns = discover(lines);
  ASSERT_FALSE(patterns.empty());
  for (const auto& line : lines) {
    TokenizedLog log = pre_.process(line);
    bool matched = false;
    for (const auto& p : patterns) {
      if (p.match(log.tokens, pre_.classifier())) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << line;
  }
}

TEST_F(DiscovererTest, FieldIdsAssignedSequentially) {
  auto patterns = discover({
      "x 10.0.0.1 y 17",
      "x 10.0.0.2 y 18",
  });
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].id(), 1);
  EXPECT_EQ(patterns[0].tokens()[1].field.name, "P1F1");
  EXPECT_EQ(patterns[0].tokens()[3].field.name, "P1F2");
}

TEST_F(DiscovererTest, HeuristicNamingAppliedToResult) {
  auto patterns = discover({
      "PDU = 17 level = 3",
      "PDU = 23 level = 9",
  });
  ASSERT_EQ(patterns.size(), 1u);
  EXPECT_EQ(patterns[0].to_string(), "PDU = %{NUMBER:PDU} level = %{NUMBER:level}");
}

TEST_F(DiscovererTest, MaxPatternsCapTriggersHierarchicalMerge) {
  // 12 distinct shapes sharing structure; a tight cap must force merges
  // that introduce wildcard fields yet still parse everything.
  std::vector<std::string> lines;
  for (int v = 0; v < 12; ++v) {
    for (int i = 0; i < 3; ++i) {
      lines.push_back("svc op" + std::to_string(v) + " phase" +
                      std::to_string(v % 3) + " value " + std::to_string(i) +
                      (v % 2 == 0 ? " extra tail" : ""));
    }
  }
  DiscoveryOptions capped;
  capped.max_patterns = 4;
  auto patterns = discover(lines, capped);
  EXPECT_LE(patterns.size(), 8u);  // strictly fewer than the 12 inputs
  EXPECT_LT(patterns.size(), 12u);
  for (const auto& line : lines) {
    TokenizedLog log = pre_.process(line);
    bool matched = false;
    for (const auto& p : patterns) {
      if (p.match(log.tokens, pre_.classifier())) matched = true;
    }
    EXPECT_TRUE(matched) << line;
  }
}

TEST_F(DiscovererTest, MergePatternsAlignsAndWidens) {
  auto a = GrokPattern::parse("start %{WORD:x} finish").value();
  auto b = GrokPattern::parse("start %{NUMBER:y} extra finish").value();
  DatatypeClassifier c;
  GrokPattern merged = merge_patterns(a, b, c);
  // Start/finish anchor; the middle differs in type and arity.
  EXPECT_FALSE(merged.tokens().front().is_field);
  EXPECT_EQ(merged.tokens().front().literal, "start");
  EXPECT_FALSE(merged.tokens().back().is_field);
  EXPECT_EQ(merged.tokens().back().literal, "finish");
  EXPECT_TRUE(merged.has_wildcard() ||
              merged.generality_score() > a.generality_score());
}

TEST_F(DiscovererTest, PatternDistanceProperties) {
  DatatypeClassifier c;
  auto a = GrokPattern::parse("alpha %{WORD:x} beta").value();
  auto b = GrokPattern::parse("alpha %{WORD:y} beta").value();
  auto far = GrokPattern::parse("gamma delta epsilon zeta").value();
  EXPECT_LT(pattern_distance(a, b, c), 0.2);
  EXPECT_GT(pattern_distance(a, far, c), 0.5);
  EXPECT_DOUBLE_EQ(pattern_distance(a, a, c),
                   pattern_distance(a, a, c));  // deterministic
  EXPECT_LE(pattern_distance(a, b, c), 1.0);
  EXPECT_GE(pattern_distance(a, b, c), 0.0);
}

TEST_F(DiscovererTest, TokenDistanceBounds) {
  auto t1 = tokenize({"a b c"})[0].tokens;
  auto t2 = tokenize({"a b d"})[0].tokens;
  auto t3 = tokenize({"a b"})[0].tokens;
  EXPECT_DOUBLE_EQ(token_distance(t1, t1), 0.0);
  double d12 = token_distance(t1, t2);
  EXPECT_GT(d12, 0.0);
  EXPECT_LT(d12, 0.5);  // one WORD-vs-WORD mismatch out of three
  EXPECT_DOUBLE_EQ(token_distance(t1, t3), 1.0);  // length mismatch
}

TEST_F(DiscovererTest, EmptyInput) {
  EXPECT_TRUE(discover({}).empty());
  EXPECT_TRUE(discover({"", "   "}).empty());
}

TEST_F(DiscovererTest, IncrementalWithEmptyKnownEqualsDiscover) {
  std::vector<std::string> lines = {
      "worker 1 heartbeat ok",
      "worker 2 heartbeat ok",
      "db connect 10.0.0.1 failed",
      "db connect 10.0.0.2 failed",
  };
  auto full = discover(lines);
  PatternDiscoverer d({}, pre_.classifier());
  auto inc = d.discover_incremental(tokenize(lines), {});
  ASSERT_EQ(inc.size(), full.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(inc[i].id(), full[i].id());
    EXPECT_EQ(inc[i].to_string(), full[i].to_string());
  }
}

TEST_F(DiscovererTest, IncrementalReturnsKnownUnchangedWhenNothingIsNovel) {
  auto known = discover({"worker 1 heartbeat ok", "worker 2 heartbeat ok"});
  ASSERT_EQ(known.size(), 1u);
  PatternDiscoverer d({}, pre_.classifier());
  auto result = d.discover_incremental(
      tokenize({"worker 7 heartbeat ok", "worker 99 heartbeat ok"}), known);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].id(), known[0].id());
  EXPECT_EQ(result[0].to_string(), known[0].to_string());
}

TEST_F(DiscovererTest, IncrementalAppendsNovelWithContinuedIds) {
  auto known = discover({"worker 1 heartbeat ok", "worker 2 heartbeat ok"});
  ASSERT_EQ(known.size(), 1u);
  known[0].assign_field_ids(7);  // simulate a model with higher ids
  PatternDiscoverer d({}, pre_.classifier());
  auto result = d.discover_incremental(tokenize({
                                           "worker 5 heartbeat ok",
                                           "db connect 10.0.0.1 failed",
                                           "db connect 10.0.0.2 failed",
                                       }),
                                       known);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].id(), 7);  // known survives untouched, in place
  EXPECT_EQ(result[0].to_string(), known[0].to_string());
  EXPECT_EQ(result[1].id(), 8);  // novel continues after the highest known id
  EXPECT_TRUE(result[1].match(pre_.process("db connect 10.0.0.3 failed").tokens,
                              pre_.classifier()));
  // The covered log did not spawn a duplicate of the known pattern.
  for (size_t i = 1; i < result.size(); ++i) {
    EXPECT_FALSE(result[i].match(pre_.process("worker 5 heartbeat ok").tokens,
                                 pre_.classifier()));
  }
}

}  // namespace
}  // namespace loglens
