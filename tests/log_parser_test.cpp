#include "parser/log_parser.h"

#include <gtest/gtest.h>

#include "tokenize/preprocessor.h"

namespace loglens {
namespace {

class LogParserTest : public ::testing::Test {
 protected:
  LogParserTest() : pre_(std::move(Preprocessor::create({}).value())) {}

  std::vector<GrokPattern> model(std::initializer_list<const char*> texts) {
    std::vector<GrokPattern> out;
    int id = 1;
    for (const char* t : texts) {
      auto p = GrokPattern::parse(t);
      EXPECT_TRUE(p.ok()) << t;
      p->assign_field_ids(id++);
      out.push_back(std::move(p.value()));
    }
    return out;
  }

  Preprocessor pre_;
};

TEST_F(LogParserTest, ParsesPaperExample) {
  LogParser parser(
      model({"%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}"}),
      pre_.classifier());
  auto outcome = parser.parse(pre_.process("Connect DB 127.0.0.1 user abc123"));
  ASSERT_TRUE(outcome.log.has_value());
  EXPECT_EQ(outcome.log->pattern_id, 1);
  EXPECT_EQ(outcome.log->to_json().dump(),
            R"({"_pattern_id":1,"Action":"Connect","Server":"127.0.0.1",)"
            R"("UserName":"abc123"})");
}

TEST_F(LogParserTest, UnparsedIsAnomaly) {
  LogParser parser(model({"%{WORD:w} ok"}), pre_.classifier());
  auto outcome = parser.parse(pre_.process("something else entirely here"));
  EXPECT_FALSE(outcome.log.has_value());
  EXPECT_EQ(parser.stats().unparsed, 1u);
}

TEST_F(LogParserTest, TimestampCarriedThrough) {
  LogParser parser(model({"%{DATETIME:t} boot %{WORD:w}"}), pre_.classifier());
  auto outcome = parser.parse(pre_.process("2016/02/23 09:00:31 boot ok"));
  ASSERT_TRUE(outcome.log.has_value());
  EXPECT_EQ(outcome.log->timestamp_ms, 1456218031000);
  EXPECT_EQ(outcome.log->to_json().get_string("_timestamp"),
            "2016/02/23 09:00:31.000");
}

TEST_F(LogParserTest, MostSpecificPatternWins) {
  // Both patterns can parse "login 42"; the WORD/NUMBER one is more
  // specific than NOTSPACE/NOTSPACE and must win regardless of model order.
  LogParser parser(model({"%{NOTSPACE:a} %{NOTSPACE:b}",
                          "%{WORD:a} %{NUMBER:b}"}),
                   pre_.classifier());
  auto outcome = parser.parse(pre_.process("login 42"));
  ASSERT_TRUE(outcome.log.has_value());
  EXPECT_EQ(outcome.log->pattern_id, 2);
}

TEST_F(LogParserTest, ShorterPatternBreaksGeneralityTies) {
  LogParser parser(model({"%{WORD:a} %{ANYDATA:rest}", "%{WORD:a}"}),
                   pre_.classifier());
  auto outcome = parser.parse(pre_.process("hello"));
  ASSERT_TRUE(outcome.log.has_value());
  EXPECT_EQ(outcome.log->pattern_id, 2);
}

TEST_F(LogParserTest, IndexAmortizesSignatureComparisons) {
  LogParser parser(model({"%{WORD:a} %{NUMBER:b}", "x %{WORD:c}",
                          "%{IP:d} in", "%{WORD:a} out %{NUMBER:b}"}),
                   pre_.classifier());
  for (int i = 0; i < 100; ++i) {
    auto outcome =
        parser.parse(pre_.process("login " + std::to_string(i)));
    ASSERT_TRUE(outcome.log.has_value());
  }
  // One group build (4 signature comparisons), then 99 index hits.
  EXPECT_EQ(parser.stats().groups_built, 1u);
  EXPECT_EQ(parser.stats().index_hits, 99u);
  EXPECT_EQ(parser.stats().signature_comparisons, 4u);
  EXPECT_EQ(parser.stats().match_attempts, 100u);
}

TEST_F(LogParserTest, EmptyCandidateGroupCachedToo) {
  LogParser parser(model({"%{WORD:a} %{NUMBER:b}"}), pre_.classifier());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(parser.parse(pre_.process("1 2 3")).log.has_value());
  }
  EXPECT_EQ(parser.stats().groups_built, 1u);
  EXPECT_EQ(parser.stats().index_hits, 9u);
  EXPECT_EQ(parser.stats().unparsed, 10u);
}

TEST_F(LogParserTest, DisabledIndexScansModelOrder) {
  LogParser parser(model({"%{NOTSPACE:a} %{NOTSPACE:b}",
                          "%{WORD:a} %{NUMBER:b}"}),
                   pre_.classifier(), IndexMode::kDisabled);
  auto outcome = parser.parse(pre_.process("login 42"));
  ASSERT_TRUE(outcome.log.has_value());
  // Naive mode: first pattern in model order wins (Logstash-style), so the
  // general pattern shadows the specific one.
  EXPECT_EQ(outcome.log->pattern_id, 1);
  EXPECT_EQ(parser.stats().groups_built, 0u);
}

TEST_F(LogParserTest, WildcardPatternViaIndex) {
  LogParser parser(model({"start %{ANYDATA:body} end"}), pre_.classifier());
  auto outcome = parser.parse(pre_.process("start a b c end"));
  ASSERT_TRUE(outcome.log.has_value());
  JsonObject& f = outcome.log->fields;
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].second.as_string(), "a b c");
  EXPECT_TRUE(parser.parse(pre_.process("start end")).log.has_value());
  EXPECT_FALSE(parser.parse(pre_.process("start a b")).log.has_value());
}

TEST_F(LogParserTest, ResidentBytesGrowWithModel) {
  auto small = model({"%{WORD:a}"});
  auto large = model({"%{WORD:a} %{NUMBER:b} %{IP:c} lit1 lit2",
                      "%{WORD:x} %{ANYDATA:y} tail",
                      "alpha beta gamma %{NOTSPACE:z}"});
  LogParser p1(small, pre_.classifier());
  LogParser p2(large, pre_.classifier());
  EXPECT_GT(p2.resident_bytes(), p1.resident_bytes());
}

TEST_F(LogParserTest, EmptyModelParsesNothing) {
  LogParser parser({}, pre_.classifier());
  EXPECT_FALSE(parser.parse(pre_.process("anything")).log.has_value());
  EXPECT_EQ(parser.pattern_count(), 0u);
}

TEST_F(LogParserTest, IndexEvictsLeastRecentlyUsedSignature) {
  LogParser parser(model({"%{WORD:a} %{NUMBER:b}"}), pre_.classifier(),
                   IndexMode::kEnabled, /*index_capacity=*/2);
  EXPECT_EQ(parser.index_capacity(), 2u);
  // Three distinct signatures against capacity 2: the third insert evicts
  // the least recently used (the first).
  parser.parse(pre_.process("login 42"));        // sig A
  parser.parse(pre_.process("login login"));     // sig B
  parser.parse(pre_.process("login 42 extra"));  // sig C -> evicts A
  EXPECT_EQ(parser.index_size(), 2u);
  EXPECT_EQ(parser.stats().index_evictions, 1u);
  // A was evicted: seeing it again rebuilds the group (and evicts B).
  parser.parse(pre_.process("login 43"));
  EXPECT_EQ(parser.stats().groups_built, 4u);
  EXPECT_EQ(parser.stats().index_hits, 0u);
  EXPECT_EQ(parser.stats().index_evictions, 2u);
}

TEST_F(LogParserTest, IndexHitRefreshesLruPosition) {
  LogParser parser(model({"%{WORD:a} %{NUMBER:b}"}), pre_.classifier(),
                   IndexMode::kEnabled, /*index_capacity=*/2);
  parser.parse(pre_.process("login 42"));        // sig A
  parser.parse(pre_.process("login login"));     // sig B
  parser.parse(pre_.process("login 43"));        // hit A -> A becomes MRU
  parser.parse(pre_.process("login 42 extra"));  // sig C -> evicts B, not A
  EXPECT_EQ(parser.stats().index_evictions, 1u);
  parser.parse(pre_.process("login 44"));  // A still cached
  EXPECT_EQ(parser.stats().index_hits, 2u);
  EXPECT_EQ(parser.stats().groups_built, 3u);
}

TEST_F(LogParserTest, EvictedGroupStillParsesCorrectly) {
  LogParser parser(model({"%{WORD:a} %{NUMBER:b}", "%{WORD:a} %{WORD:b}"}),
                   pre_.classifier(), IndexMode::kEnabled,
                   /*index_capacity=*/1);
  for (int i = 0; i < 20; ++i) {
    // Alternate signatures so every parse evicts the other's entry.
    auto a = parser.parse(pre_.process("login " + std::to_string(i)));
    ASSERT_TRUE(a.log.has_value());
    EXPECT_EQ(a.log->pattern_id, 1);
    auto b = parser.parse(pre_.process("login out"));
    ASSERT_TRUE(b.log.has_value());
    EXPECT_EQ(b.log->pattern_id, 2);
  }
  EXPECT_EQ(parser.index_size(), 1u);
  EXPECT_EQ(parser.stats().index_evictions, 39u);
}

TEST_F(LogParserTest, DisabledIndexCountsSignatureComparisons) {
  LogParser parser(model({"%{IP:d} in", "%{WORD:a} %{NUMBER:b}"}),
                   pre_.classifier(), IndexMode::kDisabled);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(parser.parse(pre_.process("login 42")).log.has_value());
  }
  // Every log pays the full model scan up to its match (2 patterns here),
  // the cost the signature index amortizes away.
  EXPECT_EQ(parser.stats().signature_comparisons, 20u);
  EXPECT_EQ(parser.stats().match_attempts, 20u);
}

TEST_F(LogParserTest, ParseIntoMatchesParseOutput) {
  LogParser a(model({"%{WORD:Action} DB %{IP:Server}"}), pre_.classifier());
  LogParser b(model({"%{WORD:Action} DB %{IP:Server}"}), pre_.classifier());
  TokenizedLog log = pre_.process("Connect DB 127.0.0.1");
  auto outcome = a.parse(log);
  ASSERT_TRUE(outcome.log.has_value());
  ParsedLog parsed;
  ASSERT_TRUE(b.parse_into(log, parsed));
  EXPECT_EQ(outcome.log->to_json().dump(), parsed.to_json().dump());
  EXPECT_EQ(parsed.raw, "Connect DB 127.0.0.1");

  // The rvalue overload steals raw instead of copying.
  TokenizedLog moved = pre_.process("Connect DB 10.1.1.1");
  ASSERT_TRUE(b.parse_into(std::move(moved), parsed));
  EXPECT_EQ(parsed.raw, "Connect DB 10.1.1.1");
}

TEST_F(LogParserTest, ResidentBytesGrowWithIndexEntries) {
  auto m = model({"%{WORD:a} %{NUMBER:b}"});
  LogParser parser(m, pre_.classifier());
  const size_t empty_index = parser.resident_bytes();
  for (int i = 0; i < 32; ++i) {
    std::string line = "login 1";
    for (int j = 0; j < i; ++j) line += " extra";
    parser.parse(pre_.process(line));
  }
  // 32 distinct signatures cached: the index accounting (bucket array +
  // per-entry nodes + owned signature/group storage) must be visible.
  EXPECT_GT(parser.resident_bytes(), empty_index + 32 * sizeof(void*));
}

}  // namespace
}  // namespace loglens
