// Multiple heterogeneous log sources through one service: the design goal
// "Handling heterogeneous logs ... irrespective of its origin" plus
// per-source bookkeeping (archival, source tags on anomalies, per-source
// heartbeat clocks).
#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "service/service.h"

namespace loglens {
namespace {

TEST(MultiSource, TwoWorkloadsOneService) {
  Dataset d1 = make_d1(0.03);
  Dataset d2 = make_d2(0.03);

  // One combined model covering both workloads (their formats differ —
  // canonical vs ISO timestamps included).
  std::vector<std::string> training = d1.training;
  training.insert(training.end(), d2.training.begin(), d2.training.end());

  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  LogLensService service(opts);
  BuildResult build = service.train(training);
  ASSERT_EQ(build.unparsed_training_logs, 0u);
  // 7 D1 patterns + 11 D2 patterns; 2 + 3 automata.
  EXPECT_EQ(build.model.sequence.automata.size(), 5u);

  Agent a1 = service.make_agent("datacenter");
  Agent a2 = service.make_agent("cloud");
  a1.replay(d1.testing);
  a2.replay(d2.testing);
  service.drain();
  service.heartbeat_advance(24L * 3600 * 1000);
  service.drain();

  // Both sources' ground truth found, correctly attributed.
  std::set<std::string> from_d1, from_d2;
  for (const auto& a : service.anomalies().all()) {
    if (a.event_id.empty()) continue;
    if (a.source == "datacenter") from_d1.insert(a.event_id);
    if (a.source == "cloud") from_d2.insert(a.event_id);
  }
  EXPECT_EQ(from_d1, d1.anomalous_event_ids);
  EXPECT_EQ(from_d2, d2.anomalous_event_ids);

  // The log manager saw and archived both sources separately.
  EXPECT_TRUE(service.log_manager().sources().contains("datacenter"));
  EXPECT_TRUE(service.log_manager().sources().contains("cloud"));
  EXPECT_EQ(service.log_store().fetch("datacenter").size(),
            d1.testing.size());
  EXPECT_EQ(service.log_store().fetch("cloud").size(), d2.testing.size());
}

TEST(MultiSource, QuietSourceExpiresViaRateExtrapolatedHeartbeats) {
  // A source goes quiet with open events mid-stream. No further logs arrive
  // from it, so only the heartbeat controller's rate-extrapolated clock can
  // push its log time past the open events' deadlines (Section V-B).
  Dataset d1 = make_d1(0.03);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  LogLensService service(opts);
  service.train(d1.training);

  Agent quiet = service.make_agent("quiet");
  std::vector<std::string> partial(d1.testing.begin(),
                                   d1.testing.begin() + 50);
  quiet.replay(partial);
  service.drain();
  ASSERT_GT(service.open_events(), 0u);

  // Repeated ticks with no new logs: each advances the quiet source's
  // predicted log time by at least the configured minimum, so every open
  // event eventually expires.
  size_t anomalies_before = service.anomalies().count();
  for (int round = 0; round < 5000 && service.open_events() > 0; ++round) {
    service.heartbeat_tick();
    service.drain();
  }
  EXPECT_EQ(service.open_events(), 0u);
  EXPECT_GT(service.anomalies().count(), anomalies_before);
}

}  // namespace
}  // namespace loglens
