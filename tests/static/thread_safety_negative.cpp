// Negative compile test for the thread-safety gate.
//
// This TU is deliberately WRONG: it touches guarded state without holding
// the guarding mutex. It is not part of any CMake target — tools/check.sh
// --static-only compiles it with Clang and asserts that
// -Werror=thread-safety REJECTS it (and that it still parses cleanly, since
// an unrelated syntax error would fake a pass). If this file ever compiles
// under the gate, the gate is broken.

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace loglens {

class Guarded {
 public:
  // BAD: reads counter_ without mu_ — the analysis must flag this.
  int racy_read() const { return counter_; }

  // BAD: claims to exclude mu_ but writes guarded state anyway.
  void racy_write(int v) LOGLENS_EXCLUDES(mu_) { counter_ = v; }

  // Good variant, proving the TU is otherwise well-formed.
  int locked_read() const LOGLENS_EXCLUDES(mu_) {
    RankedMutexLock lock(mu_);
    return counter_;
  }

 private:
  mutable RankedMutex mu_{lock_rank::kMetrics};
  int counter_ LOGLENS_GUARDED_BY(mu_) = 0;
};

int negative_fixture_entry() {
  Guarded g;
  g.racy_write(1);
  return g.racy_read() + g.locked_read();
}

}  // namespace loglens
