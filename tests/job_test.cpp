#include "streaming/job.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace loglens {
namespace {

Message msg(std::string key, std::string value) {
  Message m;
  m.key = std::move(key);
  m.value = std::move(value);
  m.tag = kTagData;
  return m;
}

class UpperTask : public PartitionTask {
 public:
  void process(const Message& m, TaskContext& ctx) override {
    Message out = m;
    for (auto& c : out.value) c = static_cast<char>(toupper(c));
    ctx.emit(std::move(out));
  }
};

StreamEngine make_engine() {
  EngineOptions opts;
  opts.partitions = 2;
  opts.workers = 2;
  return StreamEngine(opts, [](size_t) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<UpperTask>();
  });
}

TEST(JobRunner, DrainProcessesBacklogSynchronously) {
  Broker broker;
  broker.create_topic("in", 1);
  broker.create_topic("out", 1);
  for (int i = 0; i < 10; ++i) {
    broker.produce("in", msg("k" + std::to_string(i), "hello"));
  }
  StreamEngine engine = make_engine();
  JobRunner runner(broker, engine, {"in", "out", 4, 10});
  runner.drain();
  EXPECT_EQ(runner.records_in(), 10u);
  EXPECT_GE(runner.batches(), 3u);  // batch size 4 => at least 3 batches
  EXPECT_EQ(broker.end_offset("out", 0), 10u);
  auto out = broker.fetch("out", 0, 0, 100);
  EXPECT_EQ(out[0].value, "HELLO");
}

TEST(JobRunner, BackgroundLoopProcessesStream) {
  Broker broker;
  broker.create_topic("in", 1);
  broker.create_topic("out", 1);
  StreamEngine engine = make_engine();
  JobRunner runner(broker, engine, {"in", "out", 16, 10});
  runner.start();
  for (int i = 0; i < 25; ++i) {
    broker.produce("in", msg("k" + std::to_string(i), "x"));
    if (i % 10 == 9) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  // Wait (bounded) for the pipeline to catch up.
  for (int spin = 0; spin < 200 && broker.end_offset("out", 0) < 25; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  runner.stop();
  EXPECT_EQ(broker.end_offset("out", 0), 25u);
}

TEST(JobRunner, StopDrainsBufferedInput) {
  Broker broker;
  broker.create_topic("in", 1);
  broker.create_topic("out", 1);
  StreamEngine engine = make_engine();
  JobRunner runner(broker, engine, {"in", "out", 8, 10});
  runner.start();
  for (int i = 0; i < 40; ++i) broker.produce("in", msg("k", "y"));
  runner.stop();  // must not strand anything
  EXPECT_EQ(broker.end_offset("out", 0), 40u);
}

TEST(JobRunner, EmptyOutputTopicDropsOutputs) {
  Broker broker;
  broker.create_topic("in", 1);
  broker.produce("in", msg("k", "v"));
  StreamEngine engine = make_engine();
  JobRunner runner(broker, engine, {"in", "", 8, 10});
  runner.drain();
  EXPECT_EQ(runner.records_in(), 1u);
  EXPECT_TRUE(broker.topics().size() == 1u);  // no out topic created
}

TEST(JobRunner, StartIsIdempotentAndRestartable) {
  Broker broker;
  broker.create_topic("in", 1);
  broker.create_topic("out", 1);
  StreamEngine engine = make_engine();
  JobRunner runner(broker, engine, {"in", "out", 8, 10});
  runner.start();
  runner.start();  // no-op
  broker.produce("in", msg("k", "a"));
  runner.stop();
  runner.stop();  // no-op
  EXPECT_EQ(broker.end_offset("out", 0), 1u);
}

}  // namespace
}  // namespace loglens
