// Granular tests of the event-stream generator's anomaly injection: each
// InjectKind must corrupt exactly the structure the detector later relies on.
#include "datagen/event_gen.h"

#include <gtest/gtest.h>

#include <map>

#include "common/strings.h"

namespace loglens {
namespace {

EventStreamSpec base_spec(std::vector<InjectPlan> injections) {
  EventStreamSpec spec;
  spec.seed = 123;
  spec.types.push_back(EventTypeSpec{
      "wf",
      {"{TS} {HOST} Begin job {ID} from {IP}",
       "{TS} {HOST} Middle job {ID} step {N}",
       "{TS} {HOST} End job {ID} status {N}"},
      /*repeat_min=*/2, /*repeat_max=*/2, 100, 100});
  spec.train_events = 20;
  spec.test_events = 20;
  spec.injections = std::move(injections);
  return spec;
}

// Extracts the event id (the token after "job") from a generated line.
std::string id_of(const std::string& line) {
  auto toks = split_any(line, " ");
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i] == "job") return std::string(toks[i + 1]);
  }
  return {};
}

// Counts action kinds per event id.
std::map<std::string, std::map<std::string, int>> histogram(
    const std::vector<std::string>& lines) {
  std::map<std::string, std::map<std::string, int>> out;
  for (const auto& line : lines) {
    auto toks = split_any(line, " ");
    // tokens: date time host ACTION job id ...
    if (toks.size() > 3) out[id_of(line)][std::string(toks[3])]++;
  }
  return out;
}

TEST(EventGenInject, TrainingNeverCorrupted) {
  Dataset ds = generate_event_stream(
      base_spec({{InjectKind::kMissingEnd, 0}}), "t");
  for (const auto& [id, actions] : histogram(ds.training)) {
    EXPECT_EQ(actions.at("Begin"), 1) << id;
    EXPECT_EQ(actions.at("End"), 1) << id;
    EXPECT_EQ(actions.at("Middle"), 2) << id;
  }
}

TEST(EventGenInject, MissingBeginDropsFirstLog) {
  Dataset ds = generate_event_stream(
      base_spec({{InjectKind::kMissingBegin, 0}}), "t");
  ASSERT_EQ(ds.anomalous_event_ids.size(), 1u);
  const std::string& victim = *ds.anomalous_event_ids.begin();
  auto h = histogram(ds.testing);
  EXPECT_EQ(h[victim].count("Begin"), 0u);
  EXPECT_EQ(h[victim].at("End"), 1);
  EXPECT_EQ(h[victim].at("Middle"), 2);
}

TEST(EventGenInject, MissingEndDropsLastLog) {
  Dataset ds = generate_event_stream(
      base_spec({{InjectKind::kMissingEnd, 0}}), "t");
  const std::string& victim = *ds.anomalous_event_ids.begin();
  EXPECT_TRUE(ds.missing_end_event_ids.contains(victim));
  auto h = histogram(ds.testing);
  EXPECT_EQ(h[victim].at("Begin"), 1);
  EXPECT_EQ(h[victim].count("End"), 0u);
}

TEST(EventGenInject, MissingMiddleRemovesAllRepeats) {
  Dataset ds = generate_event_stream(
      base_spec({{InjectKind::kMissingMiddle, 0}}), "t");
  const std::string& victim = *ds.anomalous_event_ids.begin();
  auto h = histogram(ds.testing);
  EXPECT_EQ(h[victim].count("Middle"), 0u);
  EXPECT_EQ(h[victim].at("Begin"), 1);
  EXPECT_EQ(h[victim].at("End"), 1);
}

TEST(EventGenInject, ExtraOccurrencesExceedTrainedMax) {
  Dataset ds = generate_event_stream(
      base_spec({{InjectKind::kExtraOccurrences, 0}}), "t");
  const std::string& victim = *ds.anomalous_event_ids.begin();
  auto h = histogram(ds.testing);
  // repeat_max(2) + 3 extras on top of the normal repeats.
  EXPECT_GE(h[victim].at("Middle"), 2 + 3);
}

TEST(EventGenInject, SlowDurationStretchesTimestamps) {
  Dataset ds = generate_event_stream(
      base_spec({{InjectKind::kSlowDuration, 0}}), "t");
  const std::string& victim = *ds.anomalous_event_ids.begin();
  // Normal event: 3 gaps x 100 ms = 300 ms span; slowed: x12.
  // Find the victim's timestamps via the leading "yyyy/MM/dd HH:mm:ss.SSS".
  // A cheap proxy: the victim's log count is normal but its lines are far
  // apart in the (time-sorted) stream.
  size_t first = SIZE_MAX, last = 0;
  for (size_t i = 0; i < ds.testing.size(); ++i) {
    if (id_of(ds.testing[i]) == victim) {
      first = std::min(first, i);
      last = std::max(last, i);
    }
  }
  ASSERT_NE(first, SIZE_MAX);
  auto h = histogram(ds.testing);
  EXPECT_EQ(h[victim].at("Begin"), 1);  // structurally intact
  EXPECT_EQ(h[victim].at("End"), 1);
}

TEST(EventGenInject, DistinctVictimsPerPlan) {
  Dataset ds = generate_event_stream(
      base_spec({{InjectKind::kMissingEnd, 0},
                 {InjectKind::kMissingBegin, 0},
                 {InjectKind::kMissingMiddle, 0},
                 {InjectKind::kExtraOccurrences, 0},
                 {InjectKind::kSlowDuration, 0}}),
      "t");
  EXPECT_EQ(ds.anomalous_event_ids.size(), 5u);
  EXPECT_EQ(ds.missing_end_event_ids.size(), 1u);
  EXPECT_EQ(ds.anomaly_event_types.size(), 5u);
}

TEST(EventGenInject, EventsInterleaveInStream) {
  EventStreamSpec spec = base_spec({});
  spec.train_events = 100;
  spec.test_events = 100;
  spec.spread_ms = 2000;  // 100 events x 400 ms span in a 2 s window
  Dataset ds = generate_event_stream(spec, "t");
  // Dense overlap: consecutive lines usually belong to different events.
  size_t switches = 0;
  for (size_t i = 1; i < ds.testing.size(); ++i) {
    if (id_of(ds.testing[i]) != id_of(ds.testing[i - 1])) ++switches;
  }
  EXPECT_GT(switches, ds.testing.size() / 3);
}

TEST(EventGenInject, TimestampStyles) {
  EventStreamSpec spec = base_spec({});
  spec.timestamp_format = "iso";
  Dataset iso = generate_event_stream(spec, "t");
  EXPECT_NE(iso.training.front().find('T'), std::string::npos);
  spec.timestamp_format = "syslog";
  Dataset syslog = generate_event_stream(spec, "t");
  // Syslog style leads with a month abbreviation.
  EXPECT_TRUE(isupper(syslog.training.front()[0]));
}

TEST(EventGenInject, UniqueEventIds) {
  Dataset ds = generate_event_stream(base_spec({}), "t");
  auto train = histogram(ds.training);
  auto test = histogram(ds.testing);
  EXPECT_EQ(train.size(), 20u);
  EXPECT_EQ(test.size(), 20u);
  for (const auto& [id, _] : train) {
    EXPECT_FALSE(test.contains(id)) << id;
  }
}

}  // namespace
}  // namespace loglens
