#include "parser/signature.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

using DT = Datatype;

std::vector<DT> sig(std::initializer_list<DT> types) { return types; }

TEST(SignatureKey, JoinsNames) {
  EXPECT_EQ(signature_key(sig({DT::kDateTime, DT::kIp, DT::kWord,
                               DT::kNotSpace})),
            "DATETIME IP WORD NOTSPACE");
  EXPECT_EQ(signature_key(sig({})), "");
}

TEST(LogSignature, FromTokenizedLog) {
  TokenizedLog log;
  log.tokens = {{"2016/02/23 09:00:31.000", DT::kDateTime},
                {"127.0.0.1", DT::kIp},
                {"login", DT::kWord}};
  EXPECT_EQ(log_signature(log), sig({DT::kDateTime, DT::kIp, DT::kWord}));
}

TEST(PatternSignature, PaperExample) {
  DatatypeClassifier c;
  auto p = GrokPattern::parse(
      "%{DATETIME:P1F1} %{IP:P1F2} %{WORD:P1F3} user1");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(pattern_signature(p.value(), c),
            sig({DT::kDateTime, DT::kIp, DT::kWord, DT::kNotSpace}));
}

TEST(SignatureMatch, ExactEquality) {
  EXPECT_TRUE(signature_match(sig({DT::kWord, DT::kNumber}),
                              sig({DT::kWord, DT::kNumber})));
  EXPECT_FALSE(signature_match(sig({DT::kWord}), sig({DT::kNumber})));
  EXPECT_FALSE(signature_match(sig({DT::kWord, DT::kWord}),
                               sig({DT::kWord})));
  EXPECT_FALSE(signature_match(sig({DT::kWord}),
                               sig({DT::kWord, DT::kWord})));
}

TEST(SignatureMatch, EmptyCases) {
  EXPECT_TRUE(signature_match(sig({}), sig({})));
  EXPECT_FALSE(signature_match(sig({DT::kWord}), sig({})));
  EXPECT_TRUE(signature_match(sig({}), sig({DT::kAnyData})));
  EXPECT_FALSE(signature_match(sig({}), sig({DT::kWord})));
}

TEST(SignatureMatch, CoverageDirectional) {
  // Log WORD is covered by pattern NOTSPACE, not vice versa.
  EXPECT_TRUE(signature_match(sig({DT::kWord}), sig({DT::kNotSpace})));
  EXPECT_FALSE(signature_match(sig({DT::kNotSpace}), sig({DT::kWord})));
  EXPECT_TRUE(signature_match(sig({DT::kIp}), sig({DT::kNotSpace})));
  EXPECT_TRUE(signature_match(sig({DT::kNumber}), sig({DT::kNotSpace})));
  EXPECT_FALSE(signature_match(sig({DT::kDateTime}), sig({DT::kNotSpace})));
}

TEST(SignatureMatch, WildcardSwallowsRuns) {
  // ANYDATA spans zero or more log tokens.
  EXPECT_TRUE(signature_match(sig({DT::kWord, DT::kWord, DT::kWord}),
                              sig({DT::kAnyData})));
  EXPECT_TRUE(signature_match(
      sig({DT::kWord, DT::kNumber, DT::kIp, DT::kWord}),
      sig({DT::kWord, DT::kAnyData, DT::kWord})));
  EXPECT_TRUE(signature_match(sig({DT::kWord, DT::kWord}),
                              sig({DT::kWord, DT::kAnyData, DT::kWord})));
  EXPECT_FALSE(signature_match(sig({DT::kNumber, DT::kWord}),
                               sig({DT::kWord, DT::kAnyData})));
}

TEST(SignatureMatch, LeadingWildcardMatchesZero) {
  // The corrected row-0 seeding: a leading wildcard may match nothing.
  EXPECT_TRUE(signature_match(sig({DT::kWord}),
                              sig({DT::kAnyData, DT::kWord})));
  EXPECT_TRUE(signature_match(sig({DT::kWord}),
                              sig({DT::kAnyData, DT::kAnyData, DT::kWord})));
  EXPECT_TRUE(signature_match(sig({}), sig({DT::kAnyData, DT::kAnyData})));
}

TEST(SignatureMatch, MultipleWildcards) {
  EXPECT_TRUE(signature_match(
      sig({DT::kWord, DT::kNumber, DT::kWord, DT::kIp, DT::kWord}),
      sig({DT::kAnyData, DT::kNumber, DT::kAnyData, DT::kWord})));
  EXPECT_FALSE(signature_match(
      sig({DT::kWord, DT::kWord}),
      sig({DT::kAnyData, DT::kNumber, DT::kAnyData})));
}

TEST(SignatureMatch, WildcardAtEnd) {
  EXPECT_TRUE(signature_match(
      sig({DT::kDateTime, DT::kWord, DT::kWord, DT::kNumber}),
      sig({DT::kDateTime, DT::kAnyData})));
  EXPECT_TRUE(signature_match(sig({DT::kDateTime}),
                              sig({DT::kDateTime, DT::kAnyData})));
}

// Exhaustive equivalence against a reference backtracking matcher over all
// short signatures (property test).
bool reference_match(std::span<const DT> log, std::span<const DT> pat) {
  if (pat.empty()) return log.empty();
  if (pat.front() == DT::kAnyData) {
    for (size_t take = 0; take <= log.size(); ++take) {
      if (reference_match(log.subspan(take), pat.subspan(1))) return true;
    }
    return false;
  }
  if (log.empty()) return false;
  if (log.front() != pat.front() && !is_covered(log.front(), pat.front())) {
    return false;
  }
  return reference_match(log.subspan(1), pat.subspan(1));
}

TEST(SignatureMatch, ExhaustiveAgainstReference) {
  const DT alphabet[] = {DT::kWord, DT::kNumber, DT::kNotSpace, DT::kAnyData};
  // All log signatures of length <= 3 over {WORD,NUMBER,NOTSPACE} x all
  // pattern signatures of length <= 3 over the alphabet incl. ANYDATA.
  std::vector<std::vector<DT>> logs{{}};
  for (size_t len = 1; len <= 3; ++len) {
    size_t count = 1;
    for (size_t i = 0; i < len; ++i) count *= 3;
    for (size_t v = 0; v < count; ++v) {
      std::vector<DT> s;
      size_t x = v;
      for (size_t i = 0; i < len; ++i) {
        s.push_back(alphabet[x % 3]);
        x /= 3;
      }
      logs.push_back(std::move(s));
    }
  }
  std::vector<std::vector<DT>> pats{{}};
  for (size_t len = 1; len <= 3; ++len) {
    size_t count = 1;
    for (size_t i = 0; i < len; ++i) count *= 4;
    for (size_t v = 0; v < count; ++v) {
      std::vector<DT> s;
      size_t x = v;
      for (size_t i = 0; i < len; ++i) {
        s.push_back(alphabet[x % 4]);
        x /= 4;
      }
      pats.push_back(std::move(s));
    }
  }
  size_t checked = 0;
  for (const auto& l : logs) {
    for (const auto& p : pats) {
      ASSERT_EQ(signature_match(l, p), reference_match(l, p))
          << signature_key(l) << " vs " << signature_key(p);
      ++checked;
    }
  }
  EXPECT_GT(checked, 3000u);
}

}  // namespace
}  // namespace loglens
