#include "grok/set_matcher.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/rng.h"
#include "logmine/discoverer.h"
#include "parser/log_parser.h"
#include "parser/signature.h"
#include "tokenize/preprocessor.h"

namespace loglens {
namespace {

class GrokSetMatcherTest : public ::testing::Test {
 protected:
  GrokSetMatcherTest() : pre_(std::move(Preprocessor::create({}).value())) {}

  std::vector<GrokPattern> model(std::initializer_list<const char*> texts) {
    std::vector<GrokPattern> out;
    int id = 1;
    for (const char* t : texts) {
      auto p = GrokPattern::parse(t);
      EXPECT_TRUE(p.ok()) << t;
      p->assign_field_ids(id++);
      out.push_back(std::move(p.value()));
    }
    return out;
  }

  // Matching pattern indices by the per-pattern linear scan — the oracle the
  // walk must agree with exactly.
  std::vector<uint32_t> linear_scan(const std::vector<GrokPattern>& patterns,
                                    const std::vector<Token>& tokens) {
    std::vector<uint32_t> out;
    for (uint32_t i = 0; i < patterns.size(); ++i) {
      if (patterns[i].match(tokens, pre_.classifier())) out.push_back(i);
    }
    return out;
  }

  Preprocessor pre_;
};

TEST_F(GrokSetMatcherTest, TokenWalkFindsEveryMatchingPattern) {
  auto patterns = model({
      "login %{WORD:u}",
      "login %{NOTSPACE:u}",
      "%{ANYDATA:x} ok",
      "login admin",
  });
  auto m = GrokSetMatcher::compile_tokens(patterns);
  EXPECT_EQ(m.pattern_count(), 4u);
  GrokSetScratch s;

  ASSERT_TRUE(m.match_tokens(pre_.process("login admin").tokens,
                             pre_.classifier(), s));
  EXPECT_EQ(s.result, (std::vector<uint32_t>{0, 1, 3}));
  EXPECT_TRUE(s.prefilter_hit);  // "login" is in the literal alphabet

  ASSERT_TRUE(m.match_tokens(pre_.process("login a_b").tokens,
                             pre_.classifier(), s));
  EXPECT_EQ(s.result, (std::vector<uint32_t>{1}));  // a_b is not a WORD

  ASSERT_TRUE(
      m.match_tokens(pre_.process("boot ok").tokens, pre_.classifier(), s));
  EXPECT_EQ(s.result, (std::vector<uint32_t>{2}));
}

TEST_F(GrokSetMatcherTest, PrefilterMissReportsNoLiteralHit) {
  auto patterns = model({"login %{WORD:u}", "connect %{IP:a}"});
  auto m = GrokSetMatcher::compile_tokens(patterns);
  GrokSetScratch s;
  ASSERT_TRUE(
      m.match_tokens(pre_.process("zz qq").tokens, pre_.classifier(), s));
  EXPECT_TRUE(s.result.empty());
  EXPECT_FALSE(s.prefilter_hit);  // neither token is a pattern literal
}

TEST_F(GrokSetMatcherTest, WildcardSpansZeroOrManyTokens) {
  auto patterns = model({"start %{ANYDATA:x} end"});
  auto m = GrokSetMatcher::compile_tokens(patterns);
  GrokSetScratch s;
  const char* matching[] = {"start end", "start a end", "start a b c end"};
  for (const char* line : matching) {
    ASSERT_TRUE(
        m.match_tokens(pre_.process(line).tokens, pre_.classifier(), s));
    EXPECT_EQ(s.result, (std::vector<uint32_t>{0})) << line;
  }
  const char* rejecting[] = {"start", "end", "start end extra", "x start end"};
  for (const char* line : rejecting) {
    ASSERT_TRUE(
        m.match_tokens(pre_.process(line).tokens, pre_.classifier(), s));
    EXPECT_TRUE(s.result.empty()) << line;
  }
}

TEST_F(GrokSetMatcherTest, ActiveSetOverflowReportsFallback) {
  // With a cap of 1, two patterns diverging at the first symbol exceed the
  // active set immediately; the walk must refuse rather than drop patterns.
  auto patterns = model({"%{WORD:a} x", "%{NUMBER:a} x", "%{ANYDATA:r} y"});
  GrokSetOptions opts;
  opts.max_active = 1;
  auto m = GrokSetMatcher::compile_tokens(patterns, opts);
  GrokSetScratch s;
  EXPECT_FALSE(
      m.match_tokens(pre_.process("hello x").tokens, pre_.classifier(), s));
  EXPECT_TRUE(s.overflow);
}

TEST_F(GrokSetMatcherTest, ScratchIsReusableAcrossMatchersAndWalks) {
  auto a = GrokSetMatcher::compile_tokens(model({"alpha %{NUMBER:n}"}));
  auto b = GrokSetMatcher::compile_tokens(model({"beta %{WORD:w}"}));
  GrokSetScratch s;
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(
        a.match_tokens(pre_.process("alpha 42").tokens, pre_.classifier(), s));
    EXPECT_EQ(s.result.size(), 1u);
    ASSERT_TRUE(
        b.match_tokens(pre_.process("alpha 42").tokens, pre_.classifier(), s));
    EXPECT_TRUE(s.result.empty());
    ASSERT_TRUE(
        b.match_tokens(pre_.process("beta ok").tokens, pre_.classifier(), s));
    EXPECT_EQ(s.result.size(), 1u);
  }
}

TEST_F(GrokSetMatcherTest, SignatureWalkAgreesWithAlgorithmOne) {
  // Seeded differential: random pattern signatures (all six datatypes,
  // wildcards included) against random log signatures (classified types
  // only) — the walk must reproduce signature_match exactly.
  Rng rng(20260808);
  const Datatype kPatternTypes[] = {Datatype::kWord,     Datatype::kNumber,
                                    Datatype::kIp,       Datatype::kNotSpace,
                                    Datatype::kDateTime, Datatype::kAnyData};
  const Datatype kLogTypes[] = {Datatype::kWord, Datatype::kNumber,
                                Datatype::kIp, Datatype::kNotSpace,
                                Datatype::kDateTime};

  std::vector<std::vector<Datatype>> sigs;
  for (int i = 0; i < 48; ++i) {
    std::vector<Datatype> sig;
    const size_t len = 1 + rng.below(6);
    for (size_t j = 0; j < len; ++j) {
      sig.push_back(kPatternTypes[rng.below(std::size(kPatternTypes))]);
    }
    sigs.push_back(std::move(sig));
  }
  auto m = GrokSetMatcher::compile_signatures(sigs);
  GrokSetScratch s;

  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<Datatype> log_sig;
    const size_t len = rng.below(7);  // empty signatures included
    for (size_t j = 0; j < len; ++j) {
      log_sig.push_back(kLogTypes[rng.below(std::size(kLogTypes))]);
    }
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < sigs.size(); ++i) {
      if (signature_match(log_sig, sigs[i])) expected.push_back(i);
    }
    ASSERT_TRUE(m.match_signature(log_sig, s)) << "trial " << trial;
    EXPECT_EQ(s.result, expected)
        << "trial " << trial << " sig " << signature_key(log_sig);
  }
}

TEST_F(GrokSetMatcherTest, TokenWalkAgreesWithLinearScan) {
  // Seeded differential at the token level: random GROK patterns over a
  // shared vocabulary vs random logs from the same vocabulary; the walk's
  // match set must be identical to running every pattern individually.
  Rng rng(4242);
  const std::vector<std::string> vocab = {"alpha", "beta",     "gamma",
                                          "login", "connect",  "42",
                                          "3.5",   "10.0.0.9", "x_y"};
  const std::vector<std::string> types = {"WORD", "NUMBER", "IP", "NOTSPACE",
                                          "ANYDATA"};

  std::vector<GrokPattern> patterns;
  int id = 1;
  while (patterns.size() < 40) {
    std::string text;
    const size_t len = 1 + rng.below(5);
    int field = 0;
    for (size_t j = 0; j < len; ++j) {
      if (!text.empty()) text.push_back(' ');
      if (rng.chance(0.5)) {
        text += "%{" + rng.pick(types) + ":f" + std::to_string(field++) + "}";
      } else {
        text += rng.pick(vocab);
      }
    }
    auto p = GrokPattern::parse(text);
    ASSERT_TRUE(p.ok()) << text;
    p->assign_field_ids(id++);
    patterns.push_back(std::move(p.value()));
  }
  auto m = GrokSetMatcher::compile_tokens(patterns);
  GrokSetScratch s;

  for (int trial = 0; trial < 600; ++trial) {
    std::string line;
    const size_t len = 1 + rng.below(6);
    for (size_t j = 0; j < len; ++j) {
      if (!line.empty()) line.push_back(' ');
      line += rng.pick(vocab);
    }
    TokenizedLog log = pre_.process(line);
    ASSERT_TRUE(m.match_tokens(log.tokens, pre_.classifier(), s)) << line;
    EXPECT_EQ(s.result, linear_scan(patterns, log.tokens)) << line;
  }
}

// The end-to-end guarantee the refactor rests on: a parser with the set
// matcher enabled produces byte-identical outcomes to the linear-scan
// parser, on every path (index hit, index miss, eviction churn, unparsed).
TEST_F(GrokSetMatcherTest, ParserOutcomesAreByteIdenticalToLinearScan) {
  Rng rng(987);
  std::vector<std::string> corpus;
  for (int i = 0; i < 120; ++i) {
    corpus.push_back("worker " + std::to_string(i % 17) + " heartbeat ok");
    corpus.push_back("2016/02/23 09:00:" + std::to_string(10 + i % 50) +
                     " 10.0.0." + std::to_string(i % 9 + 1) + " login user" +
                     std::to_string(i));
    corpus.push_back("db connect " + rng.ident(5) + " latency " +
                     std::to_string(i) + " ms");
    corpus.push_back(rng.ident(4) + " unmodeled " + rng.hex(8));  // unparsed
  }
  // Model from discovery over a prefix, so later logs exercise both parsed
  // and unparsed outcomes; shuffle to churn the signature index.
  std::vector<TokenizedLog> tokenized;
  for (const auto& line : corpus) tokenized.push_back(pre_.process(line));
  PatternDiscoverer discoverer({}, pre_.classifier());
  std::vector<GrokPattern> patterns = discoverer.discover(
      {tokenized.begin(), tokenized.begin() + 60});
  ASSERT_FALSE(patterns.empty());
  for (size_t i = corpus.size(); i > 1; --i) {
    std::swap(tokenized[i - 1], tokenized[rng.below(i)]);
  }

  struct Config {
    IndexMode index;
    size_t capacity;
  };
  const Config configs[] = {
      {IndexMode::kEnabled, LogParser::kDefaultIndexCapacity},
      {IndexMode::kEnabled, 1},  // every log is an index miss + eviction
      {IndexMode::kDisabled, LogParser::kDefaultIndexCapacity},
  };
  for (const auto& cfg : configs) {
    LogParser with_set(patterns, pre_.classifier(), cfg.index, cfg.capacity,
                       SetMatchMode::kAuto);
    with_set.set_set_scan_min_group(0);  // walk on every group size
    LogParser without(patterns, pre_.classifier(), cfg.index, cfg.capacity,
                      SetMatchMode::kDisabled);
    for (const auto& log : tokenized) {
      auto a = with_set.parse(log);
      auto b = without.parse(log);
      ASSERT_EQ(a.log.has_value(), b.log.has_value()) << log.raw;
      if (a.log.has_value()) {
        EXPECT_EQ(a.log->to_json().dump(), b.log->to_json().dump()) << log.raw;
      }
    }
    EXPECT_EQ(with_set.stats().unparsed, without.stats().unparsed);
    EXPECT_EQ(with_set.stats().set_fallbacks, 0u);
    if (cfg.index == IndexMode::kEnabled) {
      EXPECT_GT(with_set.stats().set_walks, 0u);
    }
  }
}

TEST_F(GrokSetMatcherTest, ResidentBytesAndNodeSharingReported) {
  // Shared prefixes must share trie nodes: two patterns with a common
  // 3-symbol prefix need fewer nodes than disjoint ones.
  auto shared = GrokSetMatcher::compile_tokens(model({
      "svc request %{NUMBER:a} done",
      "svc request %{NUMBER:a} failed",
  }));
  auto disjoint = GrokSetMatcher::compile_tokens(model({
      "svc request %{NUMBER:a} done",
      "db shutdown %{WORD:b} now",
  }));
  EXPECT_LT(shared.node_count(), disjoint.node_count());
  EXPECT_GT(shared.resident_bytes(), 0u);
  EXPECT_EQ(shared.literal_count(), 4u);  // svc request done failed
}

}  // namespace
}  // namespace loglens
