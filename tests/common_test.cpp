// Unit tests for the small common substrate: Status/StatusOr, FNV hashing,
// and the seedable RNG every generator depends on.
#include <gtest/gtest.h>

// GCC 12 emits false-positive -Wmaybe-uninitialized warnings for moves of
// std::variant<..., std::string> members at -O2 (a known compiler issue,
// triggered by the StatusOr tests below). The library code is unaffected.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include <set>

#include "common/hash.h"
#include "common/rng.h"
#include "common/status.h"

namespace loglens {
namespace {

TEST(Status, OkAndError) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.message(), "OK");
  Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
  EXPECT_TRUE(Status::Ok().ok());
}

TEST(StatusOr, ValueAndErrorPaths) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(static_cast<bool>(v));
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());

  StatusOr<int> e = StatusOr<int>::Error("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.status().message(), "nope");
}

TEST(StatusOr, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusOr, ArrowOperator) {
  StatusOr<std::string> s(std::string("hello"));
  EXPECT_EQ(s->size(), 5u);
}

TEST(Fnv1a, KnownValuesAndStability) {
  // FNV-1a of the empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), kFnvOffset);
  EXPECT_NE(fnv1a("a"), fnv1a("b"));
  EXPECT_EQ(fnv1a("loglens"), fnv1a("loglens"));
  // constexpr-evaluable.
  static_assert(fnv1a("x") != fnv1a("y"));
}

TEST(Fnv1a, HashCombineMixes) {
  uint64_t a = fnv1a("a");
  uint64_t b = fnv1a("b");
  EXPECT_NE(hash_combine(a, b), hash_combine(b, a));
  EXPECT_NE(hash_combine(a, b), a);
}

TEST(Rng, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
  }
  bool all_equal = true;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) {
    if (a2.next() != c.next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal);
}

TEST(Rng, RangeBoundsInclusive) {
  Rng rng(7);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.range(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.range(9, 9), 9);  // degenerate range
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, HexIsDatatypeStable) {
  // First char letter, second char digit (see rng.h) — so hex ids never
  // classify as NUMBER or WORD.
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string h = rng.hex(8);
    ASSERT_EQ(h.size(), 8u);
    EXPECT_TRUE(h[0] >= 'a' && h[0] <= 'f') << h;
    EXPECT_TRUE(h[1] >= '0' && h[1] <= '9') << h;
    for (char c : h) {
      EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << h;
    }
  }
}

TEST(Rng, IdentShape) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string id = rng.ident(10);
    ASSERT_EQ(id.size(), 10u);
    EXPECT_TRUE(id[0] >= 'a' && id[0] <= 'z') << id;
  }
}

TEST(Rng, PickCoversAllItems) {
  Rng rng(13);
  std::vector<std::string> items = {"a", "b", "c"};
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

}  // namespace
}  // namespace loglens
