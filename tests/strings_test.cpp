#include "common/strings.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

TEST(SplitAny, BasicWhitespace) {
  auto parts = split_any("a b  c\td", " \t");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_EQ(parts[3], "d");
}

TEST(SplitAny, DropsEmptyPieces) {
  EXPECT_TRUE(split_any("", " ").empty());
  EXPECT_TRUE(split_any("   ", " ").empty());
  EXPECT_EQ(split_any("  x  ", " ").size(), 1u);
}

TEST(SplitAny, CustomDelimiters) {
  auto parts = split_any("a,b;c", ",;");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitExact, KeepsEmptyPieces) {
  auto parts = split_exact("a||b", "|");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(SplitExact, MultiCharSeparator) {
  auto parts = split_exact("x->y->z", "->");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "y");
}

TEST(Join, RoundTripsWithSplit) {
  std::vector<std::string> v{"one", "two", "three"};
  EXPECT_EQ(join(v, " "), "one two three");
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(join(std::vector<std::string>{"solo"}, ","), "solo");
}

TEST(Trim, StripsBothEnds) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(Case, LowerAndIequals) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_TRUE(iequals("HELLO", "hello"));
  EXPECT_FALSE(iequals("hello", "hell"));
  EXPECT_FALSE(iequals("hello", "hellx"));
}

TEST(Digits, AllDigitsAndParse) {
  EXPECT_TRUE(all_digits("0123"));
  EXPECT_FALSE(all_digits(""));
  EXPECT_FALSE(all_digits("12a"));
  EXPECT_EQ(parse_small_int("042"), 42);
  EXPECT_EQ(parse_small_int(""), -1);
  EXPECT_EQ(parse_small_int("12.3"), -1);
  EXPECT_EQ(parse_small_int("9999999999"), -1);  // too long
}

TEST(ReplaceAll, Basics) {
  EXPECT_EQ(replace_all("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(replace_all("aaa", "aa", "b"), "ba");
  EXPECT_EQ(replace_all("none", "x", "y"), "none");
  EXPECT_EQ(replace_all("x", "", "y"), "x");
}

}  // namespace
}  // namespace loglens
