#include "service/model.h"

#include <gtest/gtest.h>

#include "service/wire.h"

namespace loglens {
namespace {

std::vector<GrokPattern> sample_patterns() {
  std::vector<GrokPattern> out;
  auto p1 = GrokPattern::parse(
      "%{DATETIME:t} %{IP:ip} login %{NOTSPACE:user}");
  p1->assign_field_ids(1);
  auto p2 = GrokPattern::parse("start %{ANYDATA:body} end");
  p2->assign_field_ids(2);
  out.push_back(std::move(p1.value()));
  out.push_back(std::move(p2.value()));
  return out;
}

SequenceModel sample_sequence() {
  SequenceModel m;
  m.id_fields = {{1, "user"}, {2, "body"}};
  Automaton a;
  a.id = 1;
  a.begin_patterns = {1};
  a.end_patterns = {2};
  a.states[1] = {1, 1, 2};
  a.states[2] = {2, 1, 1};
  a.min_duration_ms = 10;
  a.max_duration_ms = 5000;
  a.transitions = {{1, 2}};
  a.training_instances = 9;
  m.automata.push_back(std::move(a));
  return m;
}

TEST(PatternSerde, RoundTrip) {
  auto patterns = sample_patterns();
  Json j = patterns_to_json(patterns);
  auto back = patterns_from_json(j);
  ASSERT_TRUE(back.ok()) << back.status().message();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].to_string(), patterns[0].to_string());
  EXPECT_EQ((*back)[0].id(), 1);
  EXPECT_EQ((*back)[1].id(), 2);
}

TEST(PatternSerde, RejectsBadShapes) {
  EXPECT_FALSE(patterns_from_json(Json("nope")).ok());
  JsonArray arr;
  arr.emplace_back(Json(JsonObject{{"id", Json(1)},
                                   {"grok", Json("%{BAD:x}")}}));
  EXPECT_FALSE(patterns_from_json(Json(std::move(arr))).ok());
}

TEST(CompositeModelSerde, FullRoundTrip) {
  CompositeModel m;
  m.patterns = sample_patterns();
  m.sequence = sample_sequence();
  Json j = m.to_json();
  auto text_back = Json::parse(j.dump());
  ASSERT_TRUE(text_back.ok());
  auto back = CompositeModel::from_json(text_back.value());
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->sequence, m.sequence);
  ASSERT_EQ(back->patterns.size(), m.patterns.size());
  for (size_t i = 0; i < m.patterns.size(); ++i) {
    EXPECT_EQ(back->patterns[i].to_string(), m.patterns[i].to_string());
  }
}

TEST(CompositeModelSerde, EmptyModel) {
  CompositeModel empty;
  auto back = CompositeModel::from_json(empty.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->patterns.empty());
  EXPECT_TRUE(back->sequence.automata.empty());
}

TEST(CompositeModelSerde, MissingPatternsRejected) {
  EXPECT_FALSE(CompositeModel::from_json(Json(JsonObject{})).ok());
  EXPECT_FALSE(CompositeModel::from_json(Json(7)).ok());
}

TEST(Wire, ParsedLogRoundTrip) {
  ParsedLog log;
  log.pattern_id = 3;
  log.timestamp_ms = 1456218031000;
  log.raw = "the raw line";
  log.fields.emplace_back("user", Json("u1"));
  log.fields.emplace_back("bytes", Json("123"));
  Message m = parsed_to_message(log, "u1", "D1");
  EXPECT_EQ(m.key, "u1");
  EXPECT_EQ(m.source, "D1");
  EXPECT_EQ(m.timestamp_ms, log.timestamp_ms);
  EXPECT_EQ(m.tag, kTagData);
  auto back = parsed_from_message(m);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back->pattern_id, 3);
  EXPECT_EQ(back->timestamp_ms, log.timestamp_ms);
  EXPECT_EQ(back->raw, "the raw line");
  EXPECT_EQ(back->fields, log.fields);
}

TEST(Wire, AnomalyRoundTrip) {
  Anomaly a;
  a.type = AnomalyType::kOccurrenceViolation;
  a.reason = "too many";
  a.timestamp_ms = 99;
  a.source = "D2";
  a.event_id = "ev-1";
  a.automaton_id = 4;
  a.logs = {"l1"};
  Message m = anomaly_to_message(a);
  EXPECT_EQ(m.tag, kTagAnomaly);
  EXPECT_EQ(m.key, "ev-1");
  auto back = anomaly_from_message(m);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), a);
}

TEST(Wire, MalformedPayloadRejected) {
  Message m;
  m.value = "{not json";
  EXPECT_FALSE(parsed_from_message(m).ok());
  EXPECT_FALSE(anomaly_from_message(m).ok());
}

}  // namespace
}  // namespace loglens
