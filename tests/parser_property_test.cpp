// Cross-module property tests: the signature index must be a lossless
// accelerator, and discovered models must parse their corpora end to end.
#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "logmine/discoverer.h"
#include "parser/log_parser.h"
#include "tokenize/preprocessor.h"

namespace loglens {
namespace {

class ParserProperty : public ::testing::Test {
 protected:
  ParserProperty() : pre_(std::move(Preprocessor::create({}).value())) {}

  std::vector<GrokPattern> discover(const std::vector<std::string>& lines,
                                    DiscoveryOptions opts) {
    std::vector<TokenizedLog> toks;
    toks.reserve(lines.size());
    for (const auto& l : lines) toks.push_back(pre_.process(l));
    PatternDiscoverer d(opts, pre_.classifier());
    return d.discover(toks);
  }

  Preprocessor pre_;
};

// Invariant (DESIGN.md): for any log, the indexed parser and the naive
// all-pattern scan agree on *whether* the log parses. (They may pick
// different patterns when several match — the index orders by specificity —
// so we compare parseability, not pattern identity.)
TEST_F(ParserProperty, IndexNeverLosesMatches) {
  Dataset d3 = make_d3(/*scale=*/0.002);
  auto patterns = discover(d3.training, recommended_discovery("D3"));
  ASSERT_FALSE(patterns.empty());

  LogParser indexed(patterns, pre_.classifier(), IndexMode::kEnabled);
  LogParser naive(patterns, pre_.classifier(), IndexMode::kDisabled);
  size_t checked = 0;
  for (const auto& line : d3.testing) {
    TokenizedLog log = pre_.process(line);
    bool a = indexed.parse(log).log.has_value();
    bool b = naive.parse(log).log.has_value();
    ASSERT_EQ(a, b) << line;
    ++checked;
  }
  EXPECT_GT(checked, 300u);
}

TEST_F(ParserProperty, TrainEqualsTestSanityZeroAnomalies) {
  // The Table IV setup: training and testing share templates, so a correct
  // parser yields zero unparsed logs.
  for (const char* name : {"D3", "D5"}) {
    Dataset ds = make_dataset(name, /*scale=*/0.002);
    auto patterns = discover(ds.training, recommended_discovery(name));
    LogParser parser(patterns, pre_.classifier());
    for (const auto& line : ds.testing) {
      ASSERT_TRUE(parser.parse(pre_.process(line)).log.has_value())
          << name << ": " << line;
    }
    EXPECT_EQ(parser.stats().unparsed, 0u) << name;
  }
}

TEST_F(ParserProperty, DiscoveredPatternCountTracksTemplateCount) {
  // Shape check for Table IV's pattern counts: discovery over the template
  // corpora recovers approximately one pattern per template.
  Dataset d5 = make_d5(/*scale=*/0.004);  // 243 templates
  auto patterns = discover(d5.training, recommended_discovery("D5"));
  EXPECT_GE(patterns.size(), 230u);
  EXPECT_LE(patterns.size(), 260u);
}

TEST_F(ParserProperty, ParsedFieldsRoundTripThroughJson) {
  Dataset d3 = make_d3(0.001);
  auto patterns = discover(d3.training, recommended_discovery("D3"));
  LogParser parser(patterns, pre_.classifier());
  size_t parsed_count = 0;
  for (size_t i = 0; i < d3.testing.size() && i < 200; ++i) {
    auto outcome = parser.parse(pre_.process(d3.testing[i]));
    if (!outcome.log.has_value()) continue;
    ++parsed_count;
    Json j = outcome.log->to_json();
    auto reparsed = Json::parse(j.dump());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value(), j);
  }
  EXPECT_GT(parsed_count, 100u);
}

// Parameterized sweep: the index invariant must hold across dataset flavors.
class IndexInvariantSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(IndexInvariantSweep, IndexedEqualsNaiveParseability) {
  auto pre = std::move(Preprocessor::create({}).value());
  Dataset ds = make_dataset(GetParam(), /*scale=*/0.001);
  std::vector<TokenizedLog> toks;
  for (const auto& l : ds.training) toks.push_back(pre.process(l));
  PatternDiscoverer d(recommended_discovery(GetParam()), pre.classifier());
  auto patterns = d.discover(toks);
  ASSERT_FALSE(patterns.empty());
  LogParser indexed(patterns, pre.classifier(), IndexMode::kEnabled);
  LogParser naive(patterns, pre.classifier(), IndexMode::kDisabled);
  size_t limit = std::min<size_t>(ds.testing.size(), 400);
  for (size_t i = 0; i < limit; ++i) {
    TokenizedLog log = pre.process(ds.testing[i]);
    ASSERT_EQ(indexed.parse(log).log.has_value(),
              naive.parse(log).log.has_value())
        << GetParam() << ": " << ds.testing[i];
  }
}

INSTANTIATE_TEST_SUITE_P(Datasets, IndexInvariantSweep,
                         ::testing::Values("D1", "D2", "D3", "D5", "SS7"));

}  // namespace
}  // namespace loglens
