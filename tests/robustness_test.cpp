// Failure-injection tests: malformed and adversarial inputs must degrade
// gracefully everywhere (dropped or reported, never crashing or poisoning
// the pipeline).
#include <gtest/gtest.h>

#include "datagen/datasets.h"
#include "service/service.h"
#include "service/wire.h"

namespace loglens {
namespace {

TEST(Robustness, GarbageOnParsedTopicIsDropped) {
  // A rogue producer writes junk straight to the detector's input topic;
  // real logs around it must still be processed.
  Dataset d1 = make_d1(0.02);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  LogLensService service(opts);
  service.train(d1.training);

  Message junk;
  junk.key = "x";
  junk.value = "{not valid json";
  junk.tag = kTagData;
  junk.source = "rogue";
  service.broker().produce("parsed", junk);
  junk.value = R"({"pattern_id":"not a number"})";
  service.broker().produce("parsed", junk);

  Agent agent = service.make_agent("D1");
  agent.replay(d1.testing);
  service.drain();
  service.heartbeat_advance(24L * 3600 * 1000);
  service.drain();

  std::set<std::string> ids;
  for (const auto& a : service.anomalies().all()) {
    if (!a.event_id.empty()) ids.insert(a.event_id);
  }
  EXPECT_EQ(ids, d1.anomalous_event_ids);
}

TEST(Robustness, HostileLogLinesNeverCrashTheParserStage) {
  Dataset d1 = make_d1(0.02);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  LogLensService service(opts);
  service.train(d1.training);
  Agent agent = service.make_agent("hostile");

  std::vector<std::string> hostile = {
      "",                                     // empty
      "   \t   ",                             // whitespace only
      std::string(100000, 'a'),               // very long single token
      std::string(5000, ' '),                 // very long whitespace
      "%{WORD:x} %{NUMBER:y}",                // GROK syntax as data
      "{\"json\": \"looking\"}",              // JSON-looking
      "2016/02/23 09:00:31",                  // timestamp only
      "2016/99/99 99:99:99 nonsense date",    // invalid timestamp
      std::string("nul\0byte embedded", 17),  // embedded NUL
      "\xff\xfe binary bytes \x01\x02",       // non-UTF8 bytes
  };
  // Plus a deep log of many tokens.
  std::string wide;
  for (int i = 0; i < 5000; ++i) wide += "t" + std::to_string(i) + " ";
  hostile.push_back(wide);

  agent.replay(hostile);
  service.drain();
  // Everything unparseable surfaced as stateless anomalies (empty lines
  // tokenize to nothing but still fail to parse, which is correct).
  EXPECT_GT(service.anomalies().count_by_type(AnomalyType::kUnparsedLog), 0u);
  // The pipeline is still healthy afterwards.
  Agent agent2 = service.make_agent("D1");
  agent2.replay({d1.testing.front()});
  service.drain();
  SUCCEED();
}

TEST(Robustness, DetectorSurvivesLogsWithoutTimestamps) {
  // Parsed logs with ts = -1 (no recognizable timestamp) flow through the
  // stateful stage without breaking duration/expiry logic.
  SequenceModel m;
  m.id_fields = {{1, "F"}, {2, "F"}};
  Automaton a;
  a.id = 1;
  a.begin_patterns = {1};
  a.end_patterns = {2};
  a.states[1] = {1, 1, 1};
  a.states[2] = {2, 1, 1};
  a.max_duration_ms = 100;
  m.automata.push_back(a);
  SequenceDetector det(m);

  ParsedLog p1;
  p1.pattern_id = 1;
  p1.timestamp_ms = -1;
  p1.fields.emplace_back("F", Json("e1"));
  EXPECT_TRUE(det.on_log(p1, "s").empty());
  // Heartbeats cannot expire an event with no first timestamp...
  EXPECT_TRUE(det.on_heartbeat(1'000'000).empty());
  EXPECT_EQ(det.open_events(), 1u);
  // ...but the end state still closes it, with duration checks skipped.
  ParsedLog p2 = p1;
  p2.pattern_id = 2;
  auto anomalies = det.on_log(p2, "s");
  EXPECT_TRUE(anomalies.empty());
  EXPECT_EQ(det.open_events(), 0u);
}

TEST(Robustness, AnomalyWithWeirdContentRoundTrips) {
  Anomaly a;
  a.type = AnomalyType::kUnparsedLog;
  a.reason = "contains \"quotes\" and\nnewlines\tand \\ slashes";
  a.event_id = std::string("\x01\x02", 2);
  a.logs = {std::string(10000, 'x'), ""};
  auto text = a.to_json().dump();
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok());
  auto back = Anomaly::from_json(parsed.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), a);
}

TEST(Robustness, ModelStoreSurvivesCorruptBlob) {
  // A corrupt model blob in the store must fail apply() cleanly, leaving
  // the running model in place.
  Dataset d1 = make_d1(0.02);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");
  LogLensService service(opts);
  service.train(d1.training);
  service.model_store().put(service.model_name(), Json("corrupt blob"));
  // The next edit attempt reads the corrupt latest version and fails.
  EXPECT_FALSE(
      service.models().edit(service.model_name(), [](CompositeModel&) {})
          .ok());
  // The pipeline still runs with the previously deployed model.
  Agent agent = service.make_agent("D1");
  agent.replay({d1.testing.front()});
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kUnparsedLog), 0u);
}

}  // namespace
}  // namespace loglens
