// End-to-end tests for the extension detectors flowing through the full
// pipeline: keyword alerts and KPI range checks ride the same model
// broadcast, the same anomaly topic, and the same store as the paper's two
// exemplary detectors.
#include <gtest/gtest.h>

#include "common/time.h"
#include "service/service.h"

namespace loglens {
namespace {

std::vector<std::string> training_lines() {
  std::vector<std::string> out;
  for (int i = 0; i < 60; ++i) {
    // Latency stays within [100, 159] during normal runs; the failover
    // component mentions a keyword legitimately.
    out.push_back(format_canonical(1456218000000 + i * 1000) +
                  " api request user" + std::to_string(i) + " latency " +
                  std::to_string(100 + i % 60));
    out.push_back(format_canonical(1456218000300 + i * 1000) +
                  " failover-agent heartbeat seq " + std::to_string(i));
  }
  return out;
}

ServiceOptions extension_options() {
  ServiceOptions opts;
  opts.build.discovery.max_dist = 0.45;
  opts.build.learn_field_ranges = true;
  opts.build.learn_keywords = true;
  opts.build.field_ranges = {.margin = 0.0, .min_samples = 10};
  return opts;
}

TEST(ExtensionE2E, KeywordAlertsFlowThroughPipeline) {
  LogLensService service(extension_options());
  service.train(training_lines());
  Agent agent = service.make_agent("api");

  // Normal traffic, including the allowlisted failover component: silent.
  agent.send_line("2016/02/23 10:00:01 api request user99 latency 140");
  agent.send_line("2016/02/23 10:00:02 failover-agent heartbeat seq 999");
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kKeywordAlert), 0u);

  // An error line alarms even though it also fails to parse.
  agent.send_line("2016/02/23 10:00:03 api request FAILED disk error");
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kKeywordAlert), 1u);
  auto alerts = service.anomalies().by_type(AnomalyType::kKeywordAlert);
  EXPECT_EQ(alerts[0].source, "api");
}

TEST(ExtensionE2E, FieldRangeAlertsFlowThroughPipeline) {
  LogLensService service(extension_options());
  service.train(training_lines());
  Agent agent = service.make_agent("api");

  agent.send_line("2016/02/23 10:00:01 api request user7 latency 130");
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kValueOutOfRange),
            0u);

  agent.send_line("2016/02/23 10:00:02 api request user7 latency 9000");
  service.drain();
  ASSERT_EQ(service.anomalies().count_by_type(AnomalyType::kValueOutOfRange),
            1u);
  auto alerts = service.anomalies().by_type(AnomalyType::kValueOutOfRange);
  EXPECT_NE(alerts[0].reason.find("= 9000 outside learned range"),
            std::string::npos)
      << alerts[0].reason;
}

TEST(ExtensionE2E, DetectorsDisabledWhenNotLearned) {
  // Default build options learn neither extension; the same traffic
  // produces no extension anomalies.
  ServiceOptions opts;
  opts.build.discovery.max_dist = 0.45;
  LogLensService service(opts);
  service.train(training_lines());
  Agent agent = service.make_agent("api");
  agent.send_line("2016/02/23 10:00:02 api request user7 latency 9000");
  agent.send_line("2016/02/23 10:00:03 api request FAILED disk error");
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kValueOutOfRange),
            0u);
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kKeywordAlert), 0u);
}

TEST(ExtensionE2E, ExtensionsSurviveModelRoundTripAndUpdate) {
  LogLensService service(extension_options());
  service.train(training_lines());
  // Force a model round trip through the store + controller (an edit that
  // changes nothing still reserializes everything).
  ASSERT_TRUE(service.models()
                  .edit(service.model_name(), [](CompositeModel&) {})
                  .ok());
  Agent agent = service.make_agent("api");
  agent.send_line("2016/02/23 10:00:02 api request user7 latency 9000");
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kValueOutOfRange),
            1u);
}

}  // namespace
}  // namespace loglens
