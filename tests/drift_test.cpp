// Data-drift handling (Section II-A design goal: "System behavior typically
// evolves over time ... LogLens periodically relearns models").
//
// Scenario: the system starts logging a new event format. The old model
// flags the new lines as unparsed anomalies; a periodic rebuild from the
// archived logs (ModelManager::rebuild, the paper's "every midnight, rebuild
// from the last seven days" flow) picks the new format up, and the anomalies
// stop — all without restarting the service.
#include <gtest/gtest.h>

#include "common/time.h"
#include "service/service.h"

namespace loglens {
namespace {

std::vector<std::string> old_format_lines(int n, int64_t t0) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(format_canonical(t0 + i * 1000) + " 10.0.0." +
                  std::to_string(i % 9 + 1) + " login user" +
                  std::to_string(i));
  }
  return out;
}

std::vector<std::string> new_format_lines(int n, int64_t t0) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) {
    out.push_back(format_canonical(t0 + i * 1000) +
                  " session opened for account acc" + std::to_string(i) +
                  " via portal " + std::to_string(i % 5));
  }
  return out;
}

TEST(Drift, RebuildFromArchiveAdoptsNewFormat) {
  ServiceOptions opts;
  opts.build.discovery.max_dist = 0.45;  // short demo lines
  LogLensService service(opts);
  service.train(old_format_lines(50, 1456218000000));

  Agent agent = service.make_agent("app");

  // Phase 1: old format parses clean.
  agent.replay(old_format_lines(20, 1456219000000));
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kUnparsedLog), 0u);

  // Phase 2: the new format appears -> every line is an unparsed anomaly.
  agent.replay(new_format_lines(30, 1456220000000));
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kUnparsedLog), 30u);

  // Phase 3: periodic relearn from the archive (which the log manager has
  // been filling all along), deployed live.
  ModelBuilder builder(opts.build);
  auto result = service.models().rebuild(service.model_name(),
                                         service.log_store(), "app", builder);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_GE(result->model.patterns.size(), 2u);

  // Phase 4: the new format now parses clean; anomaly count stays at 30.
  agent.replay(new_format_lines(25, 1456221000000));
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kUnparsedLog), 30u);
  // And the old format still parses too.
  agent.replay(old_format_lines(10, 1456222000000));
  service.drain();
  EXPECT_EQ(service.anomalies().count_by_type(AnomalyType::kUnparsedLog), 30u);
}

TEST(Drift, ModelVersionsAccumulateInStore) {
  ServiceOptions opts;
  opts.build.discovery.max_dist = 0.45;
  LogLensService service(opts);
  service.train(old_format_lines(30, 1456218000000));
  EXPECT_EQ(service.model_store().latest(service.model_name())->version, 1);

  Agent agent = service.make_agent("app");
  agent.replay(new_format_lines(20, 1456220000000));
  service.drain();
  ModelBuilder builder(opts.build);
  ASSERT_TRUE(service.models()
                  .rebuild(service.model_name(), service.log_store(), "app",
                           builder)
                  .ok());
  // The rebuild is a new version; the old one stays queryable for rollback.
  EXPECT_EQ(service.model_store().latest(service.model_name())->version, 2);
  EXPECT_TRUE(
      service.model_store().version(service.model_name(), 1).has_value());
}

}  // namespace
}  // namespace loglens
