#include "streaming/keyed_state.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

TEST(StateMap, GetOrCreateAndFind) {
  StateMap<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find("a"), nullptr);
  m.get_or_create("a") = 7;
  ASSERT_NE(m.find("a"), nullptr);
  EXPECT_EQ(*m.find("a"), 7);
  EXPECT_EQ(m.size(), 1u);
  m.get_or_create("a") += 1;  // same slot
  EXPECT_EQ(*m.find("a"), 8);
  m.erase("a");
  EXPECT_TRUE(m.empty());
}

TEST(StateMap, ForEachEnumeratesAll) {
  StateMap<int> m;
  for (int i = 0; i < 5; ++i) m.get_or_create("k" + std::to_string(i)) = i;
  int sum = 0;
  m.for_each([&sum](const std::string&, int& v) { sum += v; });
  EXPECT_EQ(sum, 0 + 1 + 2 + 3 + 4);
  // Mutation through the enumeration sticks (reference access).
  m.for_each([](const std::string&, int& v) { v *= 10; });
  EXPECT_EQ(*m.find("k3"), 30);
}

TEST(StateMap, SweepRemovesExpiredAndReportsThem) {
  StateMap<int> m;
  for (int i = 0; i < 10; ++i) m.get_or_create("k" + std::to_string(i)) = i;
  std::vector<std::string> expired;
  size_t removed = m.sweep(
      [](const std::string&, int& v) { return v % 2 == 0; },
      [&expired](const std::string& k, int&) { expired.push_back(k); });
  EXPECT_EQ(removed, 5u);
  EXPECT_EQ(expired.size(), 5u);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_EQ(m.find("k2"), nullptr);
  EXPECT_NE(m.find("k3"), nullptr);
}

// A session tracker built on KeyedStateTask: counts records per key and
// expires sessions idle past a deadline, emitting a summary message.
struct Session {
  uint64_t records = 0;
  int64_t last_seen = -1;
};

class SessionTask : public KeyedStateTask<Session> {
 protected:
  void on_record(const Message& m, Session& s, TaskContext&) override {
    ++s.records;
    s.last_seen = m.timestamp_ms;
  }
  void on_heartbeat(int64_t now, StateMap<Session>& states,
                    TaskContext& ctx) override {
    states.sweep(
        [now](const std::string&, Session& s) {
          return s.last_seen >= 0 && now - s.last_seen > 1000;
        },
        [&ctx](const std::string& key, Session& s) {
          Message out;
          out.key = key;
          out.value = std::to_string(s.records);
          out.tag = "session-closed";
          ctx.emit(std::move(out));
        });
  }
};

Message rec(const char* key, int64_t ts) {
  Message m;
  m.key = key;
  m.value = "x";
  m.timestamp_ms = ts;
  m.tag = kTagData;
  return m;
}

Message hb(int64_t ts) {
  Message m;
  m.tag = kTagHeartbeat;
  m.timestamp_ms = ts;
  return m;
}

TEST(KeyedStateTask, SessionLifecycleThroughEngine) {
  EngineOptions opts;
  opts.partitions = 3;
  opts.workers = 2;
  StreamEngine engine(opts, [](size_t) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<SessionTask>();
  });

  // Two sessions, interleaved; "a" gets 3 records, "b" gets 1.
  engine.run_batch({rec("a", 100), rec("b", 150), rec("a", 200)});
  engine.run_batch({rec("a", 300)});
  // Heartbeat before the idle deadline: nothing closes.
  auto r1 = engine.run_batch({hb(900)});
  EXPECT_TRUE(r1.outputs.empty());
  // Past the deadline: both sessions close with correct counts, regardless
  // of which partition holds them (the heartbeat fans out to all).
  auto r2 = engine.run_batch({hb(5000)});
  ASSERT_EQ(r2.outputs.size(), 2u);
  std::map<std::string, std::string> closed;
  for (const auto& m : r2.outputs) closed[m.key] = m.value;
  EXPECT_EQ(closed["a"], "3");
  EXPECT_EQ(closed["b"], "1");
  // State is gone afterwards.
  auto r3 = engine.run_batch({hb(10000)});
  EXPECT_TRUE(r3.outputs.empty());
}

TEST(KeyedStateTask, ControlMessagesIgnored) {
  EngineOptions opts;
  opts.partitions = 1;
  opts.workers = 1;
  StreamEngine engine(opts, [](size_t) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<SessionTask>();
  });
  Message control;
  control.tag = kTagControl;
  control.key = "a";
  engine.run_batch({control});
  auto& task = dynamic_cast<SessionTask&>(engine.task(0));
  EXPECT_TRUE(task.states().empty());
}

}  // namespace
}  // namespace loglens
