#include "grok/pattern.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

DatatypeClassifier& classifier() {
  static DatatypeClassifier c;
  return c;
}

std::vector<Token> tokens_of(std::initializer_list<const char*> texts) {
  std::vector<Token> out;
  for (const char* t : texts) {
    Token tok;
    tok.text = t;
    tok.type = classifier().classify(t);
    out.push_back(std::move(tok));
  }
  return out;
}

TEST(GrokParse, PaperExample) {
  auto p = GrokPattern::parse(
      "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}");
  ASSERT_TRUE(p.ok()) << p.status().message();
  ASSERT_EQ(p->size(), 5u);
  EXPECT_FALSE(p->tokens()[0].is_field ? false : true);
  EXPECT_EQ(p->tokens()[0].field.type, Datatype::kWord);
  EXPECT_EQ(p->tokens()[0].field.name, "Action");
  EXPECT_FALSE(p->tokens()[1].is_field);
  EXPECT_EQ(p->tokens()[1].literal, "DB");
  EXPECT_EQ(p->to_string(),
            "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}");
}

TEST(GrokParse, NamelessFieldAndErrors) {
  auto ok = GrokPattern::parse("%{WORD} x");
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->tokens()[0].field.name.empty());
  EXPECT_FALSE(GrokPattern::parse("%{BOGUS:x}").ok());
  EXPECT_FALSE(GrokPattern::parse("%{WORD:x").ok());
  EXPECT_FALSE(GrokPattern::parse("").ok());
  EXPECT_FALSE(GrokPattern::parse("   ").ok());
}

TEST(GrokMatch, PaperConnectExample) {
  auto p = GrokPattern::parse(
      "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}");
  ASSERT_TRUE(p.ok());
  JsonObject fields;
  ASSERT_TRUE(p->match(tokens_of({"Connect", "DB", "127.0.0.1", "user",
                                  "abc123"}),
                       classifier(), &fields));
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0].first, "Action");
  EXPECT_EQ(fields[0].second.as_string(), "Connect");
  EXPECT_EQ(fields[1].first, "Server");
  EXPECT_EQ(fields[1].second.as_string(), "127.0.0.1");
  EXPECT_EQ(fields[2].first, "UserName");
  EXPECT_EQ(fields[2].second.as_string(), "abc123");
}

TEST(GrokMatch, LiteralMismatch) {
  auto p = GrokPattern::parse("%{WORD:A} DB %{IP:S}");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->match(tokens_of({"Connect", "XX", "127.0.0.1"}),
                        classifier()));
  EXPECT_FALSE(p->match(tokens_of({"Connect", "DB"}), classifier()));
  EXPECT_FALSE(
      p->match(tokens_of({"Connect", "DB", "127.0.0.1", "extra"}),
               classifier()));
}

TEST(GrokMatch, FieldCoverage) {
  // A NOTSPACE field accepts WORD/NUMBER/IP values, but a WORD field
  // rejects non-word values.
  auto loose = GrokPattern::parse("%{NOTSPACE:x}");
  EXPECT_TRUE(loose->match(tokens_of({"hello"}), classifier()));
  EXPECT_TRUE(loose->match(tokens_of({"42"}), classifier()));
  auto strict = GrokPattern::parse("%{WORD:x}");
  EXPECT_TRUE(strict->match(tokens_of({"hello"}), classifier()));
  EXPECT_FALSE(strict->match(tokens_of({"42"}), classifier()));
  EXPECT_FALSE(strict->match(tokens_of({"user1"}), classifier()));
}

TEST(GrokMatch, DateTimeFieldMatchesOnlyDateTimeTokens) {
  auto p = GrokPattern::parse("%{DATETIME:t} %{WORD:w}");
  ASSERT_TRUE(p.ok());
  std::vector<Token> toks;
  Token dt;
  dt.text = "2016/02/23 09:00:31.000";
  dt.type = Datatype::kDateTime;
  toks.push_back(dt);
  Token w;
  w.text = "login";
  w.type = Datatype::kWord;
  toks.push_back(w);
  JsonObject fields;
  EXPECT_TRUE(p->match(toks, classifier(), &fields));
  EXPECT_EQ(fields[0].second.as_string(), "2016/02/23 09:00:31.000");
  // A WORD token does not satisfy a DATETIME field.
  EXPECT_FALSE(p->match(tokens_of({"login", "login"}), classifier()));
}

TEST(GrokMatch, AnyDataSpansZeroOrMoreTokens) {
  auto p = GrokPattern::parse("start %{ANYDATA:body} end");
  ASSERT_TRUE(p.ok());
  JsonObject fields;
  ASSERT_TRUE(p->match(tokens_of({"start", "end"}), classifier(), &fields));
  EXPECT_EQ(fields[0].second.as_string(), "");
  ASSERT_TRUE(p->match(tokens_of({"start", "a", "b", "c", "end"}),
                       classifier(), &fields));
  EXPECT_EQ(fields[0].second.as_string(), "a b c");
  EXPECT_FALSE(p->match(tokens_of({"start", "a"}), classifier()));
}

TEST(GrokMatch, AnyDataBacktracksAcrossAnchors) {
  // The wildcard must not swallow the anchor token it needs later.
  auto p = GrokPattern::parse("%{ANYDATA:a} sep %{ANYDATA:b}");
  JsonObject fields;
  ASSERT_TRUE(p->match(tokens_of({"x", "sep", "y", "z"}), classifier(),
                       &fields));
  EXPECT_EQ(fields[0].second.as_string(), "x");
  EXPECT_EQ(fields[1].second.as_string(), "y z");
  // Lazy semantics: with two seps, the first anchors.
  ASSERT_TRUE(p->match(tokens_of({"sep", "sep"}), classifier(), &fields));
  EXPECT_EQ(fields[0].second.as_string(), "");
  EXPECT_EQ(fields[1].second.as_string(), "sep");
}

TEST(GrokSignature, FieldAndLiteralContributions) {
  auto p = GrokPattern::parse(
      "%{DATETIME:P1F1} %{IP:P1F2} %{WORD:P1F3} user1");
  ASSERT_TRUE(p.ok());
  // The paper's example: literal "user1" contributes NOTSPACE.
  EXPECT_EQ(p->signature(classifier()), "DATETIME IP WORD NOTSPACE");
}

TEST(GrokFieldIds, AssignedInSequence) {
  auto p = GrokPattern::parse("%{WORD} x %{NUMBER} %{IP:keep}");
  ASSERT_TRUE(p.ok());
  p->assign_field_ids(7);
  EXPECT_EQ(p->id(), 7);
  EXPECT_EQ(p->tokens()[0].field.name, "P7F1");
  EXPECT_EQ(p->tokens()[2].field.name, "P7F2");
  EXPECT_EQ(p->tokens()[3].field.name, "keep");  // existing names kept
}

TEST(GrokGenerality, ScoreOrdersSpecificity) {
  auto specific = GrokPattern::parse("%{WORD:a} %{NUMBER:b}");
  auto general = GrokPattern::parse("%{NOTSPACE:a} %{NOTSPACE:b}");
  auto wildcard = GrokPattern::parse("%{ANYDATA:a} %{NOTSPACE:b}");
  EXPECT_LT(specific->generality_score(), general->generality_score());
  EXPECT_LT(general->generality_score(), wildcard->generality_score());
  EXPECT_TRUE(wildcard->has_wildcard());
  EXPECT_FALSE(general->has_wildcard());
}

TEST(GrokRoundTrip, ParsePrintParse) {
  const char* texts[] = {
      "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}",
      "%{DATETIME:t} %{ANYDATA:rest}",
      "PDU = %{NUMBER:PDU}",
      "a b c",
  };
  for (const char* text : texts) {
    auto p1 = GrokPattern::parse(text);
    ASSERT_TRUE(p1.ok());
    auto p2 = GrokPattern::parse(p1->to_string());
    ASSERT_TRUE(p2.ok());
    EXPECT_EQ(p1->to_string(), p2->to_string());
  }
}

}  // namespace
}  // namespace loglens
