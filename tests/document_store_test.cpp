#include "storage/document_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/stores.h"

namespace loglens {
namespace {

Json doc(const char* source, int64_t ts, const char* msg) {
  JsonObject o;
  o.emplace_back("source", Json(source));
  o.emplace_back("ts", Json(ts));
  o.emplace_back("msg", Json(msg));
  return Json(std::move(o));
}

TEST(DocumentStore, InsertAndGet) {
  DocumentStore store;
  uint64_t id = store.insert(doc("a", 1, "hello"));
  EXPECT_EQ(store.size(), 1u);
  auto got = store.get(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get_string("msg"), "hello");
  EXPECT_FALSE(store.get(999).has_value());
}

TEST(DocumentStore, TermQueryUsesIndex) {
  DocumentStore store;
  for (int i = 0; i < 100; ++i) {
    store.insert(doc(i % 2 == 0 ? "even" : "odd", i, "x"));
  }
  Query q;
  q.clauses.push_back(QueryClause::Term("source", "even"));
  EXPECT_EQ(store.query(q).size(), 50u);
  EXPECT_EQ(store.count(q), 50u);
  q.clauses[0].term = "missing";
  EXPECT_TRUE(store.query(q).empty());
}

TEST(DocumentStore, RangeQuery) {
  DocumentStore store;
  for (int i = 0; i < 20; ++i) store.insert(doc("s", i * 10, "x"));
  Query q;
  q.clauses.push_back(QueryClause::Range("ts", 50, 100));
  auto hits = store.query(q);
  EXPECT_EQ(hits.size(), 6u);  // 50,60,...,100 inclusive
}

TEST(DocumentStore, ConjunctionOfClauses) {
  DocumentStore store;
  store.insert(doc("a", 5, "x"));
  store.insert(doc("a", 50, "x"));
  store.insert(doc("b", 5, "x"));
  Query q;
  q.clauses.push_back(QueryClause::Term("source", "a"));
  q.clauses.push_back(QueryClause::Range("ts", 0, 10));
  auto hits = store.query(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].get_int("ts"), 5);
}

TEST(DocumentStore, LimitRespected) {
  DocumentStore store;
  for (int i = 0; i < 10; ++i) store.insert(doc("s", i, "x"));
  Query q;
  q.limit = 3;
  EXPECT_EQ(store.query(q).size(), 3u);
}

TEST(DocumentStore, MissingFieldNeverMatches) {
  DocumentStore store;
  store.insert(Json(JsonObject{{"other", Json("v")}}));
  Query q;
  q.clauses.push_back(QueryClause::Range("ts", 0, 100));
  EXPECT_TRUE(store.query(q).empty());
}

TEST(DocumentStore, JsonlRoundTrip) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "loglens_store_test.jsonl").string();
  {
    DocumentStore store;
    store.insert(doc("a", 1, "first"));
    store.insert(doc("b", 2, "second \"quoted\""));
    ASSERT_TRUE(store.save_jsonl(path).ok());
  }
  DocumentStore loaded;
  ASSERT_TRUE(loaded.load_jsonl(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  Query q;
  q.clauses.push_back(QueryClause::Term("source", "b"));
  auto hits = loaded.query(q);
  ASSERT_EQ(hits.size(), 1u);  // index rebuilt on load
  EXPECT_EQ(hits[0].get_string("msg"), "second \"quoted\"");
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.load_jsonl("/nonexistent/nowhere.jsonl").ok());
}

TEST(LogStore, FetchBySourceAndTime) {
  LogStore store;
  store.add("web", "line1", 100);
  store.add("web", "line2", 200);
  store.add("db", "line3", 150);
  EXPECT_EQ(store.size(), 3u);
  auto web = store.fetch("web");
  ASSERT_EQ(web.size(), 2u);
  EXPECT_EQ(web[0], "line1");
  auto ranged = store.fetch("web", 150, 300);
  ASSERT_EQ(ranged.size(), 1u);
  EXPECT_EQ(ranged[0], "line2");
  EXPECT_TRUE(store.fetch("missing").empty());
  EXPECT_EQ(store.fetch("web", INT64_MIN, INT64_MAX, 1).size(), 1u);
}

TEST(ModelStore, VersioningAndDelete) {
  ModelStore store;
  EXPECT_EQ(store.put("m", Json("v1")), 1);
  EXPECT_EQ(store.put("m", Json("v2")), 2);
  auto latest = store.latest("m");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->version, 2);
  EXPECT_EQ(latest->blob.as_string(), "v2");
  auto v1 = store.version("m", 1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->blob.as_string(), "v1");
  store.remove("m");
  EXPECT_FALSE(store.latest("m").has_value());
  EXPECT_TRUE(store.names().empty());
  // Re-adding revives with the next version.
  EXPECT_EQ(store.put("m", Json("v3")), 3);
  EXPECT_TRUE(store.latest("m").has_value());
}

TEST(ModelStore, IndependentNames) {
  ModelStore store;
  store.put("a", Json(1));
  store.put("b", Json(2));
  EXPECT_EQ(store.names().size(), 2u);
  EXPECT_FALSE(store.latest("c").has_value());
}

}  // namespace
}  // namespace loglens
