#include "storage/document_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "storage/stores.h"

namespace loglens {
namespace {

Json doc(const char* source, int64_t ts, const char* msg) {
  JsonObject o;
  o.emplace_back("source", Json(source));
  o.emplace_back("ts", Json(ts));
  o.emplace_back("msg", Json(msg));
  return Json(std::move(o));
}

TEST(DocumentStore, InsertAndGet) {
  DocumentStore store;
  uint64_t id = store.insert(doc("a", 1, "hello"));
  EXPECT_EQ(store.size(), 1u);
  auto got = store.get(id);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->get_string("msg"), "hello");
  EXPECT_FALSE(store.get(999).has_value());
}

TEST(DocumentStore, TermQueryUsesIndex) {
  DocumentStore store;
  for (int i = 0; i < 100; ++i) {
    store.insert(doc(i % 2 == 0 ? "even" : "odd", i, "x"));
  }
  Query q;
  q.clauses.push_back(QueryClause::Term("source", "even"));
  EXPECT_EQ(store.query(q).size(), 50u);
  EXPECT_EQ(store.count(q), 50u);
  q.clauses[0].term = "missing";
  EXPECT_TRUE(store.query(q).empty());
}

TEST(DocumentStore, RangeQuery) {
  DocumentStore store;
  for (int i = 0; i < 20; ++i) store.insert(doc("s", i * 10, "x"));
  Query q;
  q.clauses.push_back(QueryClause::Range("ts", 50, 100));
  auto hits = store.query(q);
  EXPECT_EQ(hits.size(), 6u);  // 50,60,...,100 inclusive
}

TEST(DocumentStore, ConjunctionOfClauses) {
  DocumentStore store;
  store.insert(doc("a", 5, "x"));
  store.insert(doc("a", 50, "x"));
  store.insert(doc("b", 5, "x"));
  Query q;
  q.clauses.push_back(QueryClause::Term("source", "a"));
  q.clauses.push_back(QueryClause::Range("ts", 0, 10));
  auto hits = store.query(q);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].get_int("ts"), 5);
}

TEST(DocumentStore, LimitRespected) {
  DocumentStore store;
  for (int i = 0; i < 10; ++i) store.insert(doc("s", i, "x"));
  Query q;
  q.limit = 3;
  EXPECT_EQ(store.query(q).size(), 3u);
}

TEST(DocumentStore, MissingFieldNeverMatches) {
  DocumentStore store;
  store.insert(Json(JsonObject{{"other", Json("v")}}));
  Query q;
  q.clauses.push_back(QueryClause::Range("ts", 0, 100));
  EXPECT_TRUE(store.query(q).empty());
}

TEST(DocumentStore, JsonlRoundTrip) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "loglens_store_test.jsonl").string();
  {
    DocumentStore store;
    store.insert(doc("a", 1, "first"));
    store.insert(doc("b", 2, "second \"quoted\""));
    ASSERT_TRUE(store.save_jsonl(path).ok());
  }
  DocumentStore loaded;
  ASSERT_TRUE(loaded.load_jsonl(path).ok());
  EXPECT_EQ(loaded.size(), 2u);
  Query q;
  q.clauses.push_back(QueryClause::Term("source", "b"));
  auto hits = loaded.query(q);
  ASSERT_EQ(hits.size(), 1u);  // index rebuilt on load
  EXPECT_EQ(hits[0].get_string("msg"), "second \"quoted\"");
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.load_jsonl("/nonexistent/nowhere.jsonl").ok());
}

TEST(DocumentStore, LoadJsonlRejectsNonObjectLine) {
  namespace fs = std::filesystem;
  std::string path =
      (fs::temp_directory_path() / "loglens_store_badline.jsonl").string();
  {
    std::ofstream out(path);
    out << "{\"source\":\"a\",\"ts\":1}\n";
    out << "[1,2,3]\n";  // an array is not a queryable document
    out << "{\"source\":\"b\",\"ts\":2}\n";
  }
  DocumentStore store;
  Status s = store.load_jsonl(path);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find(":2:"), std::string::npos)
      << "error should name the offending line: " << s.message();
  EXPECT_NE(s.message().find("not a JSON object"), std::string::npos)
      << s.message();
  std::remove(path.c_str());
}

// Satellite probe for the posting-list planner: a conjunction must be driven
// from the *smallest* posting list. With 900 "hot" docs and 4 "rare" docs,
// driving from the rare list scans ~4 candidates; driving from the common
// list would scan ~900. QueryStats::docs_scanned makes the choice visible.
TEST(DocumentStore, QueryScansSmallestPostingList) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "loglens_store_planner").string();
  fs::remove_all(dir);
  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 0;  // manual flush: one sealed segment
  opts.auto_compact = false;
  DocumentStore store(opts);
  for (int i = 0; i < 900; ++i) {
    JsonObject o;
    o.emplace_back("source", Json("common"));
    o.emplace_back("level", Json(i < 4 ? "rare" : "noise"));
    store.insert(Json(std::move(o)));
  }
  ASSERT_TRUE(store.flush().ok());
  ASSERT_EQ(store.segment_count(), 1u);

  Query q;
  q.clauses.push_back(QueryClause::Term("source", "common"));  // 900 docs
  q.clauses.push_back(QueryClause::Term("level", "rare"));     // 4 docs
  QueryStats stats;
  EXPECT_EQ(store.count(q, &stats), 4u);
  EXPECT_EQ(stats.docs_scanned, 4u)
      << "planner must drive from the smallest posting list";

  // Same property for the hot tier's in-memory postings.
  DocumentStore hot;
  for (int i = 0; i < 900; ++i) {
    JsonObject o;
    o.emplace_back("source", Json("common"));
    o.emplace_back("level", Json(i < 4 ? "rare" : "noise"));
    hot.insert(Json(std::move(o)));
  }
  stats = QueryStats{};
  EXPECT_EQ(hot.count(q, &stats), 4u);
  EXPECT_EQ(stats.docs_scanned, 4u);
  fs::remove_all(dir);
}

// Basic tiered round trip: inserts spill to sealed segments at the hot
// threshold, every id survives flush and reopen, and queries span both
// tiers transparently.
TEST(DocumentStore, TieredFlushAndReopen) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "loglens_store_tiered").string();
  fs::remove_all(dir);
  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 4;
  opts.auto_compact = false;
  {
    DocumentStore store(opts);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(store.insert(doc(i % 2 == 0 ? "a" : "b", i, "m")),
                static_cast<uint64_t>(i));
    }
    EXPECT_EQ(store.segment_count(), 2u);  // 8 sealed, 2 hot
    EXPECT_EQ(store.hot_count(), 2u);
    Query q;
    q.clauses.push_back(QueryClause::Term("source", "a"));
    EXPECT_EQ(store.count(q), 5u);  // spans sealed + hot
    ASSERT_TRUE(store.flush().ok());
    EXPECT_EQ(store.hot_count(), 0u);
  }
  DocumentStore reopened(opts);
  EXPECT_EQ(reopened.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    auto got = reopened.get(static_cast<uint64_t>(i));
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->find("ts")->as_int(), i);
  }
  EXPECT_EQ(reopened.insert(doc("c", 10, "m")), 10u);  // ids continue
  fs::remove_all(dir);
}

TEST(LogStore, FetchBySourceAndTime) {
  LogStore store;
  store.add("web", "line1", 100);
  store.add("web", "line2", 200);
  store.add("db", "line3", 150);
  EXPECT_EQ(store.size(), 3u);
  auto web = store.fetch("web");
  ASSERT_EQ(web.size(), 2u);
  EXPECT_EQ(web[0], "line1");
  auto ranged = store.fetch("web", 150, 300);
  ASSERT_EQ(ranged.size(), 1u);
  EXPECT_EQ(ranged[0], "line2");
  EXPECT_TRUE(store.fetch("missing").empty());
  EXPECT_EQ(store.fetch("web", INT64_MIN, INT64_MAX, 1).size(), 1u);
}

TEST(ModelStore, VersioningAndDelete) {
  ModelStore store;
  EXPECT_EQ(store.put("m", Json("v1")), 1);
  EXPECT_EQ(store.put("m", Json("v2")), 2);
  auto latest = store.latest("m");
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->version, 2);
  EXPECT_EQ(latest->blob.as_string(), "v2");
  auto v1 = store.version("m", 1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->blob.as_string(), "v1");
  store.remove("m");
  EXPECT_FALSE(store.latest("m").has_value());
  EXPECT_TRUE(store.names().empty());
  // Re-adding revives with the next version.
  EXPECT_EQ(store.put("m", Json("v3")), 3);
  EXPECT_TRUE(store.latest("m").has_value());
}

TEST(ModelStore, IndependentNames) {
  ModelStore store;
  store.put("a", Json(1));
  store.put("b", Json(2));
  EXPECT_EQ(store.names().size(), 2u);
  EXPECT_FALSE(store.latest("c").has_value());
}

}  // namespace
}  // namespace loglens
