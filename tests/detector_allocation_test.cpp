// Allocation contract for the detector hot paths, mirroring
// tests/parser_allocation_test.cpp's counting operator new.
//
// Two claims underwritten here:
//  - A heartbeat that expires nothing performs ZERO heap allocations, at any
//    open-event count. (The pre-deadline-index sweep walked every open event
//    and ran candidate attribution per event, allocating a std::set node per
//    distinct pattern per event per heartbeat.)
//  - A close cycle's steady-state allocation count is INDEPENDENT of how
//    many distinct patterns the event observed. (Validation used to build a
//    std::map<int,int> of occurrence counts — one node allocation per
//    distinct pattern per validation; it now reuses flat vectors indexed by
//    pattern ID.)
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/detector.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace loglens {
namespace {

constexpr int kMidPatterns = 32;

// One automaton: begin 1, end 2, mid patterns 3 .. 3+kMidPatterns-1, every
// occurrence bound loose and the duration bound huge, so a well-formed
// begin → mids → end cycle emits no anomalies (anomaly strings would
// allocate and drown the signal being measured).
SequenceModel wide_model() {
  SequenceModel m;
  Automaton a;
  a.id = 1;
  a.begin_patterns = {1};
  a.end_patterns = {2};
  for (int pid : {1, 2}) {
    a.states[pid] = StateRule{pid, 0, 1'000};
  }
  for (int i = 0; i < kMidPatterns; ++i) {
    const int pid = 3 + i;
    a.states[pid] = StateRule{pid, 0, 1'000};
  }
  a.min_duration_ms = 0;
  a.max_duration_ms = 1'000'000'000;
  m.automata.push_back(std::move(a));
  for (const auto& [pid, _] : m.automata[0].states) m.id_fields[pid] = "F";
  return m;
}

// Event IDs and raw lines stay under the SSO bound so string content never
// hits the heap — what remains is node/vector traffic, the thing under test.
ParsedLog make_log(int pattern, const std::string& id, int64_t ts) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  log.fields.emplace_back("F", Json(id));
  log.raw = "p" + std::to_string(pattern) + " " + id;
  return log;
}

TEST(DetectorAllocationTest, NoOpHeartbeatIsAllocationFree) {
  SequenceDetector det(wide_model(), {});
  // Many open events, none anywhere near its deadline.
  for (int i = 0; i < 512; ++i) {
    det.on_log(make_log(1, "e" + std::to_string(i), 1'000 + i), "alloc");
  }
  ASSERT_EQ(det.open_events(), 512u);
  ASSERT_TRUE(det.on_heartbeat(2'000).empty());  // warm

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 100; ++rep) {
    ASSERT_TRUE(det.on_heartbeat(2'000 + rep).empty());
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "expected zero allocations across 100 no-op heartbeats over "
      << det.open_events() << " open events";
  EXPECT_EQ(det.open_events(), 512u);
}

// Runs `cycles` clean close cycles (begin, kMidPatterns mid logs, end) and
// returns the allocation count. `distinct` selects the variant: the mid logs
// either repeat one pattern or use kMidPatterns different ones.
uint64_t run_cycles(SequenceDetector& det, bool distinct, int cycles) {
  std::vector<ParsedLog> cycle;
  int64_t ts = 10'000;
  cycle.push_back(make_log(1, "e", ts++));
  for (int i = 0; i < kMidPatterns; ++i) {
    cycle.push_back(make_log(distinct ? 3 + i : 3, "e", ts++));
  }
  cycle.push_back(make_log(2, "e", ts++));

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int rep = 0; rep < cycles; ++rep) {
    for (const auto& log : cycle) {
      EXPECT_TRUE(det.on_log(log, "alloc").empty())
          << "cycle must emit no anomalies";
    }
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(det.open_events(), 0u);
  return after - before;
}

TEST(DetectorAllocationTest, CloseCycleCostIndependentOfDistinctPatterns) {
  SequenceModel model = wide_model();
  SequenceDetector repeat_det(model, {});
  SequenceDetector distinct_det(model, {});

  // Warm both: sizes the occurrence scratch, observed-pattern scratch,
  // per-event vectors, and the deadline heap to steady-state capacity.
  run_cycles(repeat_det, /*distinct=*/false, 50);
  run_cycles(distinct_det, /*distinct=*/true, 50);

  const uint64_t repeat_allocs = run_cycles(repeat_det, false, 200);
  const uint64_t distinct_allocs = run_cycles(distinct_det, true, 200);
  // 1 distinct mid pattern vs kMidPatterns of them: identical allocation
  // traffic. A per-distinct-pattern node anywhere in the close path would
  // show up as ~kMidPatterns extra allocations per cycle.
  EXPECT_EQ(distinct_allocs, repeat_allocs)
      << "close-cycle allocations scale with distinct pattern count";
}

}  // namespace
}  // namespace loglens
