#include "json/json.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

TEST(JsonDump, Scalars) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(false).dump(), "false");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(int64_t{-7}).dump(), "-7");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(JsonDump, StringEscapes) {
  EXPECT_EQ(Json("a\"b\\c\nd\te").dump(), "\"a\\\"b\\\\c\\nd\\te\"");
  EXPECT_EQ(Json(std::string("\x01", 1)).dump(), "\"\\u0001\"");
}

TEST(JsonDump, NestedStructures) {
  JsonObject obj;
  obj.emplace_back("Action", Json("Connect"));
  obj.emplace_back("Server", Json("127.0.0.1"));
  JsonArray arr;
  arr.emplace_back(1);
  arr.emplace_back("two");
  obj.emplace_back("list", Json(std::move(arr)));
  EXPECT_EQ(Json(std::move(obj)).dump(),
            R"({"Action":"Connect","Server":"127.0.0.1","list":[1,"two"]})");
}

TEST(JsonDump, PreservesInsertionOrder) {
  Json j{JsonObject{}};
  j.set("zebra", 1);
  j.set("apple", 2);
  EXPECT_EQ(j.dump(), R"({"zebra":1,"apple":2})");
}

TEST(JsonParse, RoundTrip) {
  const char* text =
      R"({"a":1,"b":-2.5,"c":"x\ny","d":[true,false,null],"e":{"f":"g"}})";
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->dump(), text);
}

TEST(JsonParse, Numbers) {
  EXPECT_EQ(Json::parse("123")->as_int(), 123);
  EXPECT_TRUE(Json::parse("123")->is_int());
  EXPECT_TRUE(Json::parse("1.5")->is_double());
  EXPECT_DOUBLE_EQ(Json::parse("1.5e2")->as_double(), 150.0);
  EXPECT_EQ(Json::parse("-9")->as_int(), -9);
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(Json::parse("").ok());
  EXPECT_FALSE(Json::parse("{").ok());
  EXPECT_FALSE(Json::parse("[1,]").ok());
  EXPECT_FALSE(Json::parse("{\"a\":}").ok());
  EXPECT_FALSE(Json::parse("tru").ok());
  EXPECT_FALSE(Json::parse("1 2").ok());
  EXPECT_FALSE(Json::parse("\"unterminated").ok());
}

TEST(JsonParse, UnicodeEscape) {
  auto j = Json::parse(R"("Aé")");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->as_string(), "A\xc3\xa9");
}

TEST(JsonObjectHelpers, FindSetGet) {
  Json j{JsonObject{}};
  EXPECT_EQ(j.find("missing"), nullptr);
  j.set("k", "v");
  j.set("n", 5);
  ASSERT_NE(j.find("k"), nullptr);
  EXPECT_EQ(j.get_string("k"), "v");
  EXPECT_EQ(j.get_string("missing", "dflt"), "dflt");
  EXPECT_EQ(j.get_int("n"), 5);
  EXPECT_EQ(j.get_int("missing", -1), -1);
  j.set("k", "v2");  // overwrite
  EXPECT_EQ(j.get_string("k"), "v2");
  EXPECT_EQ(j.as_object().size(), 2u);
}

TEST(JsonEquality, DeepCompare) {
  auto a = Json::parse(R"({"x":[1,2,{"y":"z"}]})");
  auto b = Json::parse(R"({"x":[1,2,{"y":"z"}]})");
  auto c = Json::parse(R"({"x":[1,2,{"y":"w"}]})");
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value(), c.value());
}

TEST(JsonParse, WhitespaceTolerant) {
  auto j = Json::parse("  { \"a\" :\n[ 1 , 2 ]\t} ");
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->dump(), R"({"a":[1,2]})");
}

}  // namespace
}  // namespace loglens
