// Unit tests for the metrics subsystem: concurrent counters, histogram
// percentile accuracy against known distributions, registry handle
// stability, exposition formats, and the span ring buffer.
#include "metrics/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "metrics/timer.h"
#include "streaming/thread_pool.h"

namespace loglens {
namespace {

TEST(CounterTest, ConcurrentIncrementsFromThreadPool) {
  Counter counter;
  constexpr int kWorkers = 8;
  constexpr int kTasks = 64;
  constexpr uint64_t kPerTask = 10'000;
  ThreadPool pool(kWorkers);
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&counter] {
      for (uint64_t i = 0; i < kPerTask; ++i) counter.inc();
    });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.value(), kTasks * kPerTask);
}

TEST(CounterTest, IncrementByAndReset) {
  Counter counter;
  counter.inc(5);
  counter.inc(7);
  EXPECT_EQ(counter.value(), 12u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(GaugeTest, SetAddValue) {
  Gauge gauge;
  gauge.set(42);
  EXPECT_EQ(gauge.value(), 42);
  gauge.add(-50);
  EXPECT_EQ(gauge.value(), -8);
}

TEST(HistogramTest, BucketBoundsContainValues) {
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{3}, uint64_t{4}, uint64_t{7},
        uint64_t{100}, uint64_t{1023}, uint64_t{1024}, uint64_t{999'999},
        uint64_t{1} << 40}) {
    size_t b = Histogram::bucket_of(v);
    ASSERT_LT(b, Histogram::kBuckets);
    EXPECT_LE(Histogram::bucket_lo(b), v) << v;
    EXPECT_LT(v, Histogram::bucket_lo(b) + Histogram::bucket_width(b)) << v;
  }
}

TEST(HistogramTest, UniformDistributionPercentiles) {
  Histogram hist;
  for (uint64_t v = 1; v <= 1000; ++v) hist.record(v);
  Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_EQ(snap.sum, 500'500u);
  EXPECT_EQ(snap.min, 1u);
  EXPECT_EQ(snap.max, 1000u);
  // Log-scale buckets are 12.5% wide; allow 15% relative error.
  EXPECT_NEAR(snap.p50, 500.0, 75.0);
  EXPECT_NEAR(snap.p90, 900.0, 135.0);
  EXPECT_NEAR(snap.p95, 950.0, 143.0);
  EXPECT_NEAR(snap.p99, 990.0, 149.0);
}

TEST(HistogramTest, SkewedDistribution) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.record(10);
  hist.record(10'000);
  Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 101u);
  // The p50/p99 ranks both land in the value-10 bucket (width 2).
  EXPECT_GE(snap.p50, 10.0);
  EXPECT_LE(snap.p50, 12.0);
  EXPECT_LE(snap.p99, 12.0);
  EXPECT_EQ(snap.max, 10'000u);
}

TEST(HistogramTest, ExactSmallValues) {
  Histogram hist;
  hist.record(0);
  hist.record(1);
  hist.record(2);
  hist.record(3);
  Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 3u);
}

TEST(HistogramTest, ConcurrentRecordsStayConsistent) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        hist.record((t + 1) * 100 + i % 50);
      }
    });
  }
  for (auto& th : threads) th.join();
  Histogram::Snapshot snap = hist.snapshot();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  EXPECT_EQ(snap.min, 100u);
  EXPECT_EQ(snap.max, 849u);
}

TEST(RegistryTest, HandlesAreStableAndSharedByNameAndLabels) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x_total", {{"p", "0"}});
  Counter& b = registry.counter("x_total", {{"p", "0"}});
  Counter& c = registry.counter("x_total", {{"p", "1"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  // Label order must not matter.
  Counter& d = registry.counter("y_total", {{"a", "1"}, {"b", "2"}});
  Counter& e = registry.counter("y_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&d, &e);
}

TEST(RegistryTest, PrometheusRendering) {
  MetricsRegistry registry;
  registry.counter("loglens_test_total", {{"stage", "parser"}}, "test counter")
      .inc(3);
  registry.gauge("loglens_test_depth", {}).set(-2);
  Histogram& hist = registry.histogram("loglens_test_us", {{"q", "a\"b"}});
  hist.record(10);
  std::string text = registry.render_prometheus();
  EXPECT_NE(text.find("# TYPE loglens_test_total counter"), std::string::npos);
  EXPECT_NE(text.find("# HELP loglens_test_total test counter"),
            std::string::npos);
  EXPECT_NE(text.find("loglens_test_total{stage=\"parser\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("loglens_test_depth -2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE loglens_test_us summary"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(text.find("loglens_test_us_count{q=\"a\\\"b\"} 1"),
            std::string::npos);
}

TEST(RegistryTest, JsonSnapshotConsistency) {
  MetricsRegistry registry;
  registry.counter("c_total").inc(7);
  registry.gauge("g").set(9);
  registry.histogram("h_us").record(100);
  registry.record_span("stage.batch", 1, 2);
  Json snap = registry.snapshot_json();
  ASSERT_TRUE(snap.is_object());
  const Json* counters = snap.find("counters");
  ASSERT_TRUE(counters != nullptr && counters->is_array());
  ASSERT_EQ(counters->as_array().size(), 1u);
  EXPECT_EQ(counters->as_array()[0].get_string("name"), "c_total");
  const Json* hists = snap.find("histograms");
  ASSERT_TRUE(hists != nullptr && hists->is_array());
  ASSERT_EQ(hists->as_array().size(), 1u);
  const Json* count = hists->as_array()[0].find("count");
  ASSERT_NE(count, nullptr);
  EXPECT_EQ(count->as_int(), 1);
  const Json* spans = snap.find("spans");
  ASSERT_TRUE(spans != nullptr && spans->is_array());
  EXPECT_EQ(spans->as_array().size(), 1u);
  // Round-trips through the JSON parser.
  auto parsed = Json::parse(snap.dump());
  EXPECT_TRUE(parsed.ok());
}

TEST(RegistryTest, ResetZeroesInPlace) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c_total");
  c.inc(5);
  Histogram& h = registry.histogram("h_us");
  h.record(123);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);  // same handle, zeroed
  EXPECT_EQ(h.snapshot().count, 0u);
  EXPECT_TRUE(registry.recent_spans().empty());
}

TEST(RegistryTest, SpanRingKeepsNewest) {
  MetricsRegistry registry;
  for (int i = 0; i < 300; ++i) {
    registry.record_span("s" + std::to_string(i), i, 1);
  }
  auto spans = registry.recent_spans();
  ASSERT_EQ(spans.size(), 256u);
  EXPECT_EQ(spans.front().name, "s44");  // oldest surviving
  EXPECT_EQ(spans.back().name, "s299");  // newest
}

TEST(TimerTest, ScopedTimerRecords) {
  Histogram hist;
  { ScopedTimer timer(&hist); }
  EXPECT_EQ(hist.snapshot().count, 1u);
}

TEST(TimerTest, ScopedSpanFilesRecordAndSample) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("span_us");
  { ScopedSpan span(&registry, "unit.test", &hist); }
  EXPECT_EQ(hist.snapshot().count, 1u);
  auto spans = registry.recent_spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "unit.test");
}

}  // namespace
}  // namespace loglens
