// Release-flavour counterpart of lock_rank_test: this target is compiled
// with -DLOGLENS_LOCK_RANK_CHECKS=0 (tests/CMakeLists.txt), pinning that
// RankedMutex degrades to a plain std::mutex passthrough — no bookkeeping,
// no aborts — which is what production Release builds get.

#include <gtest/gtest.h>

#include "common/lock_rank.h"

namespace loglens {
namespace {

static_assert(!lock_rank::checks_enabled(),
              "this target must be built with LOGLENS_LOCK_RANK_CHECKS=0");

TEST(LockRankReleaseTest, NoBookkeeping) {
  RankedMutex outer(lock_rank::kServiceRecover);
  RankedMutexLock lock(outer);
  EXPECT_EQ(lock_rank::held_count(), 0);
}

TEST(LockRankReleaseTest, InversionPassesThrough) {
  // The same nesting that aborts in lock_rank_test: with checks compiled
  // out it must simply lock and unlock.
  RankedMutex broker(lock_rank::kBroker);
  RankedMutex group(lock_rank::kConsumerGroup);
  {
    RankedMutexLock a(broker);
    RankedMutexLock b(group);
  }
  SUCCEED();
}

TEST(LockRankReleaseTest, TryLockStillLocks) {
  RankedMutex mu(lock_rank::kMetrics);
  ASSERT_TRUE(mu.try_lock());
  EXPECT_FALSE(mu.try_lock());
  mu.unlock();
}

}  // namespace
}  // namespace loglens
