// Property tests for detector snapshot/restore.
//
// The deadline index is never serialized — restore_state recomputes every
// deadline and rebuilds the heap — so the property that matters is: a
// detector restored from a snapshot at an ARBITRARY point behaves exactly
// like the detector that kept running. Any divergence means the rebuilt
// index disagrees with the organically-grown one (wrong deadline, lost
// event, stale-entry leak).
//
// The torn-checkpoint tests pin the other half of the contract: a malformed
// snapshot (the chaos suite's truncated checkpoint file, or a structurally
// damaged JSON) must error WITHOUT touching detector state.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/detector.h"
#include "common/rng.h"

namespace loglens {
namespace {

SequenceModel property_model(Rng& rng) {
  SequenceModel m;
  const size_t n_automata = 1 + rng.below(2);
  for (size_t i = 0; i < n_automata; ++i) {
    Automaton a;
    a.id = static_cast<int>(i) + 1;
    const int base = (static_cast<int>(i) + 1) * 10;
    const int size = 2 + static_cast<int>(rng.below(3));
    a.begin_patterns = {base};
    a.end_patterns = {base + size - 1};
    for (int s = 0; s < size; ++s) {
      StateRule rule;
      rule.pattern_id = base + s;
      rule.min_occurrences = static_cast<int>(rng.below(2));
      rule.max_occurrences = rule.min_occurrences + 1;
      a.states[base + s] = rule;
    }
    a.min_duration_ms = 0;
    a.max_duration_ms = rng.range(200, 1500);
    m.automata.push_back(std::move(a));
  }
  for (const auto& a : m.automata) {
    for (const auto& [pid, _] : a.states) m.id_fields[pid] = "F";
  }
  return m;
}

// One pre-generated trace operation, so the same sequence can be replayed
// into several detectors.
struct Op {
  enum Kind { kLog, kHeartbeat } kind = kLog;
  ParsedLog log;
  int64_t heartbeat_ms = 0;
};

std::vector<Op> random_trace(Rng& rng, const std::vector<int>& patterns,
                             size_t n) {
  std::vector<Op> ops;
  int64_t now = 5'000;
  for (size_t i = 0; i < n; ++i) {
    now += rng.below(80);
    Op op;
    if (rng.chance(0.15)) {
      op.kind = Op::kHeartbeat;
      op.heartbeat_ms = now + static_cast<int64_t>(rng.below(1500));
    } else {
      op.kind = Op::kLog;
      const int pattern = patterns[rng.below(patterns.size())];
      const std::string id = "ev" + std::to_string(rng.below(10));
      int64_t ts = rng.chance(0.1)
                       ? -1
                       : now + static_cast<int64_t>(rng.below(500)) -
                             (rng.chance(0.2) ? rng.range(0, 2000) : 0);
      op.log.pattern_id = pattern;
      op.log.timestamp_ms = ts;
      op.log.fields.emplace_back("F", Json(id));
      op.log.raw = "p" + std::to_string(pattern) + " " + id;
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

std::string apply(SequenceDetector& det, const Op& op) {
  std::vector<Anomaly> anomalies =
      op.kind == Op::kLog ? det.on_log(op.log, "prop")
                          : det.on_heartbeat(op.heartbeat_ms);
  std::string out;
  for (const auto& a : anomalies) {
    out += a.to_json().dump();
    out += '\n';
  }
  return out;
}

TEST(DetectorSnapshotProperty, RestoredDetectorMatchesContinuousRun) {
  for (uint64_t seed = 1; seed <= 300; ++seed) {
    Rng rng(seed);
    DetectorOptions opts;
    opts.default_timeout_ms = rng.range(300, 1200);
    if (rng.chance(0.3)) opts.max_open_events = 3 + rng.below(4);
    SequenceModel model = property_model(rng);
    std::vector<int> patterns;
    for (const auto& a : model.automata) {
      for (const auto& [pid, _] : a.states) patterns.push_back(pid);
    }
    std::vector<Op> ops = random_trace(rng, patterns, 80);
    const size_t cut = rng.below(ops.size() + 1);

    SequenceDetector continuous(model, opts);
    SequenceDetector prefix(model, opts);
    for (size_t i = 0; i < cut; ++i) {
      apply(continuous, ops[i]);
      apply(prefix, ops[i]);
    }

    // Snapshotting is deterministic and non-destructive.
    const Json snap = prefix.snapshot_state();
    ASSERT_EQ(snap.dump(), prefix.snapshot_state().dump())
        << "seed " << seed;

    SequenceDetector restored(model, opts);
    ASSERT_TRUE(restored.restore_state(snap).ok()) << "seed " << seed;
    ASSERT_EQ(restored.open_events(), continuous.open_events())
        << "seed " << seed;
    ASSERT_EQ(restored.snapshot_state().dump(), snap.dump())
        << "round-trip changed the snapshot, seed " << seed;

    // Identical futures: the rebuilt deadline index must expire, close, and
    // evict exactly like the index that grew organically.
    for (size_t i = cut; i < ops.size(); ++i) {
      ASSERT_EQ(apply(restored, ops[i]), apply(continuous, ops[i]))
          << "seed " << seed << " op " << i << " (cut " << cut << ")";
      ASSERT_EQ(restored.open_events(), continuous.open_events())
          << "seed " << seed << " op " << i;
    }
    const std::string flush_a =
        apply(restored, Op{Op::kHeartbeat, {}, 1 << 30});
    const std::string flush_b =
        apply(continuous, Op{Op::kHeartbeat, {}, 1 << 30});
    ASSERT_EQ(flush_a, flush_b) << "seed " << seed;
    ASSERT_EQ(restored.snapshot_state().dump(),
              continuous.snapshot_state().dump())
        << "seed " << seed;
  }
}

// Build a detector holding a few open events and return it along with its
// snapshot bytes (used to verify the state survived a failed restore).
SequenceDetector populated_detector(const SequenceModel& model) {
  SequenceDetector det(model, {});
  for (int i = 0; i < 5; ++i) {
    ParsedLog log;
    log.pattern_id = 10;
    log.timestamp_ms = 1'000 + i * 10;
    log.fields.emplace_back("F", Json("ev" + std::to_string(i)));
    log.raw = "p10 ev" + std::to_string(i);
    det.on_log(log, "torn");
  }
  return det;
}

TEST(DetectorSnapshotProperty, MalformedSnapshotLeavesStateUntouched) {
  Rng rng(7);
  SequenceModel model = property_model(rng);
  ASSERT_TRUE(model.automata[0].states.contains(10));

  const std::vector<Json> malformed = {
      Json("not an object"),
      Json(JsonObject{}),  // missing open_events
      Json(JsonObject{{"open_events", Json("not an array")}}),
      Json(JsonObject{{"open_events", Json(JsonArray{Json("not an object")})}}),
      // An event with no id.
      Json(JsonObject{
          {"open_events",
           Json(JsonArray{Json(JsonObject{{"source", Json("x")},
                                          {"first_ts", Json(1)}})})}}),
      // A malformed (one-element) log pair.
      Json(JsonObject{
          {"open_events",
           Json(JsonArray{Json(JsonObject{
               {"id", Json("ev0")},
               {"logs",
                Json(JsonArray{Json(JsonArray{Json(int64_t{10})})})}})})}}),
  };

  for (size_t i = 0; i < malformed.size(); ++i) {
    SequenceDetector det = populated_detector(model);
    SequenceDetector twin = populated_detector(model);
    const std::string before = det.snapshot_state().dump();
    ASSERT_FALSE(det.restore_state(malformed[i]).ok()) << "case " << i;
    EXPECT_EQ(det.snapshot_state().dump(), before) << "case " << i;
    // The failed restore must not have disturbed the deadline index either:
    // both detectors expire the same events at the same heartbeat.
    auto a = det.on_heartbeat(1 << 30);
    auto b = twin.on_heartbeat(1 << 30);
    ASSERT_EQ(a.size(), b.size()) << "case " << i;
    for (size_t k = 0; k < a.size(); ++k) {
      EXPECT_EQ(a[k].to_json().dump(), b[k].to_json().dump())
          << "case " << i << " anomaly " << k;
    }
    EXPECT_EQ(det.open_events(), 0u) << "case " << i;
  }
}

TEST(DetectorSnapshotProperty, TornCheckpointTextNeverRestores) {
  // The on-disk failure mode: a checkpoint write torn mid-file. Truncated
  // JSON must fail to parse (recovery then skips the checkpoint — see
  // tests/chaos_test.cpp); no truncation may slip through and restore a
  // partial open-event set silently.
  Rng rng(11);
  SequenceModel model = property_model(rng);
  SequenceDetector det = populated_detector(model);
  const std::string full = det.snapshot_state().dump();
  for (size_t len = 0; len < full.size(); ++len) {
    auto parsed = Json::parse(std::string_view(full).substr(0, len));
    if (!parsed.ok()) continue;  // torn file detected at the parse layer
    // A prefix that happens to parse (e.g. "{}" would not occur here, but
    // stay defensive) must still be rejected structurally or restore the
    // exact full state — never a silent partial restore.
    SequenceDetector fresh(model, {});
    Status restored = fresh.restore_state(parsed.value());
    if (restored.ok()) {
      EXPECT_EQ(fresh.snapshot_state().dump(), full) << "prefix len " << len;
    }
  }
  // The intact snapshot round-trips.
  auto parsed = Json::parse(full);
  ASSERT_TRUE(parsed.ok());
  SequenceDetector fresh(model, {});
  ASSERT_TRUE(fresh.restore_state(parsed.value()).ok());
  EXPECT_EQ(fresh.snapshot_state().dump(), full);
}

}  // namespace
}  // namespace loglens
