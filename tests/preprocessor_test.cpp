#include "tokenize/preprocessor.h"

#include <gtest/gtest.h>

#include "common/time.h"

namespace loglens {
namespace {

Preprocessor make(PreprocessorOptions opts = {}) {
  auto p = Preprocessor::create(std::move(opts));
  EXPECT_TRUE(p.ok()) << p.status().message();
  return std::move(p.value());
}

TEST(Preprocess, PaperLogExample) {
  Preprocessor p = make();
  TokenizedLog log = p.process("2016/02/23 09:00:31.000 127.0.0.1 login user1");
  ASSERT_EQ(log.tokens.size(), 4u);
  EXPECT_EQ(log.tokens[0].type, Datatype::kDateTime);
  EXPECT_EQ(log.tokens[0].text, "2016/02/23 09:00:31.000");
  EXPECT_EQ(log.tokens[1].type, Datatype::kIp);
  EXPECT_EQ(log.tokens[2].type, Datatype::kWord);
  EXPECT_EQ(log.tokens[3].type, Datatype::kNotSpace);
  EXPECT_EQ(log.timestamp_ms,
            to_epoch_millis(CivilTime{2016, 2, 23, 9, 0, 31, 0}));
  EXPECT_EQ(log.raw, "2016/02/23 09:00:31.000 127.0.0.1 login user1");
}

TEST(Preprocess, TimestampUnification) {
  // "Feb 23, 2016 09:00:31" (4 raw tokens) becomes one canonical DATETIME.
  Preprocessor p = make();
  TokenizedLog log = p.process("Feb 23, 2016 09:00:31 server started");
  ASSERT_EQ(log.tokens.size(), 3u);
  EXPECT_EQ(log.tokens[0].text, "2016/02/23 09:00:31.000");
  EXPECT_EQ(log.tokens[0].type, Datatype::kDateTime);
  EXPECT_EQ(log.tokens[1].text, "server");
}

TEST(Preprocess, FirstTimestampWins) {
  Preprocessor p = make();
  TokenizedLog log =
      p.process("2016/02/23 09:00:31 moved to 2016/02/23 10:00:00");
  EXPECT_EQ(log.timestamp_ms,
            to_epoch_millis(CivilTime{2016, 2, 23, 9, 0, 31, 0}));
  // Both are recognized as DATETIME tokens.
  int datetimes = 0;
  for (const auto& t : log.tokens) {
    if (t.type == Datatype::kDateTime) ++datetimes;
  }
  EXPECT_EQ(datetimes, 2);
}

TEST(Preprocess, NoTimestamp) {
  Preprocessor p = make();
  TokenizedLog log = p.process("plain words only");
  EXPECT_EQ(log.timestamp_ms, -1);
  ASSERT_EQ(log.tokens.size(), 3u);
  for (const auto& t : log.tokens) {
    EXPECT_EQ(t.type, Datatype::kWord);
  }
}

TEST(Preprocess, EmptyAndWhitespaceOnly) {
  Preprocessor p = make();
  EXPECT_TRUE(p.process("").tokens.empty());
  EXPECT_TRUE(p.process("   \t  ").tokens.empty());
}

TEST(Preprocess, CustomDelimiters) {
  PreprocessorOptions opts;
  opts.delimiters = " ,;";
  Preprocessor p = make(std::move(opts));
  TokenizedLog log = p.process("a,b;c d");
  ASSERT_EQ(log.tokens.size(), 4u);
  EXPECT_EQ(log.tokens[0].text, "a");
  EXPECT_EQ(log.tokens[2].text, "c");
}

TEST(Preprocess, SplitRulePaperExample) {
  // "123KB" -> "123" "KB".
  PreprocessorOptions opts;
  opts.split_rules.push_back({"([0-9]+)(KB)", "$1 $2"});
  Preprocessor p = make(std::move(opts));
  TokenizedLog log = p.process("read 123KB done");
  ASSERT_EQ(log.tokens.size(), 4u);
  EXPECT_EQ(log.tokens[1].text, "123");
  EXPECT_EQ(log.tokens[1].type, Datatype::kNumber);
  EXPECT_EQ(log.tokens[2].text, "KB");
  EXPECT_EQ(log.tokens[2].type, Datatype::kWord);
}

TEST(Preprocess, SplitRuleOnlyAppliesOnFullTokenMatch) {
  PreprocessorOptions opts;
  opts.split_rules.push_back({"([0-9]+)(KB)", "$1 $2"});
  Preprocessor p = make(std::move(opts));
  // "x123KB" does not full-match the rule, so it stays one token.
  TokenizedLog log = p.process("x123KB");
  ASSERT_EQ(log.tokens.size(), 1u);
  EXPECT_EQ(log.tokens[0].text, "x123KB");
}

TEST(Preprocess, BadSplitRuleReported) {
  PreprocessorOptions opts;
  opts.split_rules.push_back({"([0-9]+", "$1"});
  EXPECT_FALSE(Preprocessor::create(std::move(opts)).ok());
}

TEST(Preprocess, UserTimestampFormats) {
  PreprocessorOptions opts;
  opts.timestamp_formats = {"yyyy.MM.dd-HH:mm:ss"};
  Preprocessor p = make(std::move(opts));
  TokenizedLog log = p.process("2016.02.23-09:00:31 boot");
  ASSERT_GE(log.tokens.size(), 1u);
  EXPECT_EQ(log.tokens[0].type, Datatype::kDateTime);
  // The default formats are replaced, so canonical input is NOT recognized.
  TokenizedLog log2 = p.process("2016/02/23 09:00:31 boot");
  EXPECT_EQ(log2.timestamp_ms, -1);
}

TEST(Preprocess, IsoTimestampSingleToken) {
  Preprocessor p = make();
  TokenizedLog log = p.process("2016-02-23T09:00:31.500 nova boot");
  ASSERT_EQ(log.tokens.size(), 3u);
  EXPECT_EQ(log.tokens[0].type, Datatype::kDateTime);
  EXPECT_EQ(log.tokens[0].text, "2016/02/23 09:00:31.500");
}

}  // namespace
}  // namespace loglens
