// Proves the hot-path allocation contract: once the parser, its scratch, and
// the reused output slots are warm, an index-hit parse_into performs ZERO
// heap allocations per log. A global counting operator new underwrites the
// claim — any hidden allocation (string copy, vector growth, rehash) fails
// the exact-zero expectation.
#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parser/log_parser.h"
#include "tokenize/preprocessor.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace loglens {
namespace {

std::vector<GrokPattern> make_model() {
  std::vector<GrokPattern> model;
  int id = 1;
  for (const char* text : {
           "%{WORD:Action} DB %{IP:Server} user %{NOTSPACE:UserName}",
           "%{WORD:w} logged out session %{NUMBER:n}",
           "error code %{NUMBER:code} at %{NOTSPACE:loc}",
       }) {
    auto p = GrokPattern::parse(text);
    p->assign_field_ids(id++);
    model.push_back(std::move(p.value()));
  }
  return model;
}

TEST(ParserAllocationTest, IndexHitParseIntoIsAllocationFree) {
  auto pre = std::move(Preprocessor::create({}).value());
  LogParser parser(make_model(), pre.classifier());

  // Distinct field values, one shared signature: every parse after the first
  // is an index hit.
  std::vector<TokenizedLog> logs;
  for (int i = 0; i < 64; ++i) {
    logs.push_back(pre.process("Connect DB 10.0.0." + std::to_string(i) +
                               " user u" + std::to_string(100 + i)));
  }

  ParsedLog parsed;
  // Warm: sizes the index entry, the signature/matcher scratch, and the
  // output slots (field names, values, raw) to their steady-state capacity.
  for (const auto& log : logs) {
    ASSERT_TRUE(parser.parse_into(log, parsed));
  }

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 10; ++rep) {
    for (const auto& log : logs) {
      ASSERT_TRUE(parser.parse_into(log, parsed));
    }
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "expected zero allocations across " << 10 * logs.size()
      << " warm index-hit parses";
  EXPECT_EQ(parser.stats().groups_built, 1u);
}

TEST(ParserAllocationTest, UnparsedLogsAreAllocationFreeToo) {
  auto pre = std::move(Preprocessor::create({}).value());
  LogParser parser(make_model(), pre.classifier());
  TokenizedLog log = pre.process("something else entirely here now");

  ParsedLog parsed;
  EXPECT_FALSE(parser.parse_into(log, parsed));  // warm (builds the group)

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 100; ++rep) {
    EXPECT_FALSE(parser.parse_into(log, parsed));
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

TEST(ParserAllocationTest, FullPipelineSteadyStateStaysAllocationFree) {
  // process_into + the raw-stealing parse_into overload: the preprocessor
  // piece/token slots and the ParsedLog raw slot all reach a steady state,
  // removing both raw copies the old path paid per log.
  auto pre = std::move(Preprocessor::create({}).value());
  LogParser parser(make_model(), pre.classifier());

  std::vector<std::string> lines;
  for (int i = 0; i < 64; ++i) {
    lines.push_back("Connect DB 10.0.0." + std::to_string(i) + " user u" +
                    std::to_string(100 + i));
  }

  TokenizedLog tokenized;
  ParsedLog parsed;
  for (int rep = 0; rep < 2; ++rep) {
    for (const auto& line : lines) {
      pre.process_into(line, tokenized);
      ASSERT_TRUE(parser.parse_into(std::move(tokenized), parsed));
    }
  }

  const uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int rep = 0; rep < 10; ++rep) {
    for (const auto& line : lines) {
      pre.process_into(line, tokenized);
      ASSERT_TRUE(parser.parse_into(std::move(tokenized), parsed));
      ASSERT_EQ(parsed.raw, line);
    }
  }
  const uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace loglens
