#include "automata/id_discovery.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

ParsedLog log_of(int pattern, std::initializer_list<std::pair<const char*, const char*>> fields,
                 int64_t ts = 0) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  for (const auto& [k, v] : fields) {
    log.fields.emplace_back(k, Json(v));
  }
  return log;
}

TEST(IdDiscovery, FindsSharedIdAcrossPatterns) {
  // Two events, each spanning patterns 1 and 2, linked by field content.
  std::vector<ParsedLog> logs = {
      log_of(1, {{"P1F1", "ev-aaa"}, {"P1F2", "x1"}}),
      log_of(2, {{"P2F1", "ev-aaa"}, {"P2F2", "y1"}}),
      log_of(1, {{"P1F1", "ev-bbb"}, {"P1F2", "x2"}}),
      log_of(2, {{"P2F1", "ev-bbb"}, {"P2F2", "y2"}}),
  };
  IdFieldMap map = discover_id_fields(logs);
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map[1], "P1F1");
  EXPECT_EQ(map[2], "P2F1");
}

TEST(IdDiscovery, IgnoresConstantsAndHighFrequencyContents) {
  // "prod" appears in every log of both patterns but only as one distinct
  // content with huge fan-out; it must not be chosen.
  std::vector<ParsedLog> logs;
  for (int e = 0; e < 30; ++e) {
    std::string id = "ev-" + std::to_string(e);
    logs.push_back(log_of(1, {{"P1F1", id.c_str()}, {"P1F2", "prod"}}));
    logs.push_back(log_of(2, {{"P2F1", id.c_str()}, {"P2F2", "prod"}}));
  }
  IdDiscoveryOptions opts;
  opts.max_logs_per_content = 8;
  IdFieldMap map = discover_id_fields(logs, opts);
  ASSERT_EQ(map.size(), 2u);
  EXPECT_EQ(map[1], "P1F1");
  EXPECT_EQ(map[2], "P2F1");
}

TEST(IdDiscovery, RequiresMultipleDistinctContents) {
  // A single event is not enough evidence.
  std::vector<ParsedLog> logs = {
      log_of(1, {{"P1F1", "ev-only"}}),
      log_of(2, {{"P2F1", "ev-only"}}),
  };
  EXPECT_TRUE(discover_id_fields(logs).empty());
}

TEST(IdDiscovery, HeterogeneousEventTypesViaGreedyCover) {
  // Patterns {1,2} share id field A; patterns {3,4} share id field B; no
  // single content covers all four patterns (the paper's strict rule would
  // find nothing) — the greedy-cover extension must find both.
  std::vector<ParsedLog> logs;
  for (int e = 0; e < 5; ++e) {
    std::string a = "a-" + std::to_string(e);
    std::string b = "b-" + std::to_string(e);
    logs.push_back(log_of(1, {{"P1F1", a.c_str()}}));
    logs.push_back(log_of(2, {{"P2F1", a.c_str()}}));
    logs.push_back(log_of(3, {{"P3F1", b.c_str()}}));
    logs.push_back(log_of(4, {{"P4F1", b.c_str()}}));
  }
  IdFieldMap map = discover_id_fields(logs);
  ASSERT_EQ(map.size(), 4u);
  EXPECT_EQ(map[1], "P1F1");
  EXPECT_EQ(map[3], "P3F1");
}

TEST(IdDiscovery, AmbiguousFieldPerPatternRejected) {
  // If a content maps pattern 1 to two different fields, that candidate
  // cannot be an id assignment.
  std::vector<ParsedLog> logs = {
      log_of(1, {{"P1F1", "x"}, {"P1F2", "x"}}),
      log_of(2, {{"P2F1", "x"}}),
      log_of(1, {{"P1F1", "y"}, {"P1F2", "y"}}),
      log_of(2, {{"P2F1", "y"}}),
  };
  IdFieldMap map = discover_id_fields(logs);
  EXPECT_TRUE(map.empty());
}

TEST(IdDiscovery, MinPatternsThreshold) {
  // Contents confined to one pattern do not form an event link.
  std::vector<ParsedLog> logs = {
      log_of(1, {{"P1F1", "v1"}}),
      log_of(1, {{"P1F1", "v2"}}),
  };
  EXPECT_TRUE(discover_id_fields(logs).empty());
}

TEST(IdDiscovery, EmptyAndFieldlessInputs) {
  EXPECT_TRUE(discover_id_fields({}).empty());
  std::vector<ParsedLog> logs = {log_of(1, {}), log_of(2, {})};
  EXPECT_TRUE(discover_id_fields(logs).empty());
}

TEST(IdDiscovery, NonStringFieldsIgnored) {
  ParsedLog l1;
  l1.pattern_id = 1;
  l1.fields.emplace_back("num", Json(42));
  ParsedLog l2;
  l2.pattern_id = 2;
  l2.fields.emplace_back("num", Json(42));
  EXPECT_TRUE(discover_id_fields({l1, l2}).empty());
}

TEST(IdDiscovery, Deterministic) {
  std::vector<ParsedLog> logs;
  for (int e = 0; e < 10; ++e) {
    std::string id = "ev-" + std::to_string(e);
    logs.push_back(log_of(1, {{"P1F1", id.c_str()}, {"P1F2", "other"}}));
    logs.push_back(log_of(2, {{"P2F1", id.c_str()}}));
  }
  IdFieldMap a = discover_id_fields(logs);
  IdFieldMap b = discover_id_fields(logs);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace loglens
