#include "common/time.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

TEST(CivilTime, EpochOrigin) {
  CivilTime t;  // 1970/01/01 00:00:00.000
  EXPECT_EQ(to_epoch_millis(t), 0);
  EXPECT_EQ(from_epoch_millis(0), t);
}

TEST(CivilTime, KnownDate) {
  CivilTime t{2016, 2, 23, 9, 0, 31, 0};
  int64_t ms = to_epoch_millis(t);
  EXPECT_EQ(ms, 1456218031000);
  EXPECT_EQ(from_epoch_millis(ms), t);
}

TEST(CivilTime, FormatCanonical) {
  CivilTime t{2016, 2, 23, 9, 0, 31, 7};
  EXPECT_EQ(format_canonical(t), "2016/02/23 09:00:31.007");
}

TEST(CivilTime, NegativeEpoch) {
  CivilTime t{1969, 12, 31, 23, 59, 59, 999};
  EXPECT_EQ(to_epoch_millis(t), -1);
  EXPECT_EQ(from_epoch_millis(-1), t);
}

TEST(CivilTime, LeapYearRules) {
  EXPECT_TRUE(is_leap_year(2016));
  EXPECT_TRUE(is_leap_year(2000));
  EXPECT_FALSE(is_leap_year(1900));
  EXPECT_FALSE(is_leap_year(2018));
  EXPECT_EQ(days_in_month(2016, 2), 29);
  EXPECT_EQ(days_in_month(2018, 2), 28);
  EXPECT_EQ(days_in_month(2018, 4), 30);
}

TEST(CivilTime, Validation) {
  EXPECT_TRUE(is_valid_civil({2016, 2, 29, 0, 0, 0, 0}));
  EXPECT_FALSE(is_valid_civil({2017, 2, 29, 0, 0, 0, 0}));
  EXPECT_FALSE(is_valid_civil({2017, 13, 1, 0, 0, 0, 0}));
  EXPECT_FALSE(is_valid_civil({2017, 0, 1, 0, 0, 0, 0}));
  EXPECT_FALSE(is_valid_civil({2017, 6, 31, 0, 0, 0, 0}));
  EXPECT_FALSE(is_valid_civil({2017, 6, 1, 24, 0, 0, 0}));
  EXPECT_FALSE(is_valid_civil({2017, 6, 1, 0, 60, 0, 0}));
  EXPECT_FALSE(is_valid_civil({2017, 6, 1, 0, 0, 0, 1000}));
}

// Property: round-trip across a broad sweep of timestamps.
class RoundTrip : public ::testing::TestWithParam<int64_t> {};

TEST_P(RoundTrip, EpochToCivilAndBack) {
  int64_t ms = GetParam();
  CivilTime t = from_epoch_millis(ms);
  EXPECT_TRUE(is_valid_civil(t));
  EXPECT_EQ(to_epoch_millis(t), ms);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RoundTrip,
    ::testing::Values(0LL, 1LL, 999LL, 86400000LL, 1456218031000LL,
                      1462788000000LL, 4102444799999LL,  // 2099-12-31
                      951782399000LL,                    // leap-day eve 2000
                      -86400000LL));

TEST(CivilTime, DaysFromCivilInverse) {
  for (int64_t day : {-1000, 0, 1, 1000, 20000, 40000}) {
    int y, m, d;
    civil_from_days(day, y, m, d);
    EXPECT_EQ(days_from_civil(y, m, d), day);
  }
}

}  // namespace
}  // namespace loglens
