#include "streaming/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

namespace loglens {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran = true; });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, TasksRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      int now = in_flight.fetch_add(1) + 1;
      int old = peak.load();
      while (now > old && !peak.compare_exchange_weak(old, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      in_flight.fetch_sub(1);
    });
  }
  pool.wait_idle();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPool, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait_idle();
  }  // destructor must join without deadlock
  EXPECT_EQ(counter.load(), 20);
}

}  // namespace
}  // namespace loglens
