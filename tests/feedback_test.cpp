// The human-validation feedback loop: for every anomaly type, accepting the
// anomaly as normal edits the model so the same behaviour no longer alarms —
// and the edit lands in the live pipeline.
#include <gtest/gtest.h>

#include "common/time.h"
#include "service/feedback.h"
#include "service/service.h"

namespace loglens {
namespace {

// Training corpus: a two-step workflow plus a KPI-bearing line.
std::vector<std::string> training() {
  std::vector<std::string> out;
  int64_t t0 = 1456218000000;
  for (int i = 0; i < 60; ++i) {
    std::string id = "wf-x" + std::to_string(100000 + i * 7);
    out.push_back(format_canonical(t0) + " OpenFlow flow " + id +
                  " from 10.0.0." + std::to_string(i % 9 + 1));
    out.push_back(format_canonical(t0 + 500) + " StepFlow flow " + id +
                  " work " + std::to_string(i * 13 % 977));
    out.push_back(format_canonical(t0 + 1000) + " CloseFlow flow " + id +
                  " latency " + std::to_string(100 + i % 50));
    t0 += 10'000;
  }
  return out;
}

class FeedbackTest : public ::testing::Test {
 protected:
  FeedbackTest() {
    ServiceOptions opts;
    opts.build.discovery.max_dist = 0.34;
    opts.build.learn_field_ranges = true;
    opts.build.learn_keywords = true;
    opts.build.field_ranges = {.margin = 0.0, .min_samples = 10};
    service_ = std::make_unique<LogLensService>(opts);
    BuildResult build = service_->train(training());
    EXPECT_EQ(build.unparsed_training_logs, 0u);
    EXPECT_EQ(build.model.sequence.automata.size(), 1u);
    handler_ = std::make_unique<FeedbackHandler>(service_->models(),
                                                 service_->model_name());
    agent_ = std::make_unique<Agent>(service_->make_agent("fb"));
  }

  // Streams one line and returns the anomalies it produced (new ones only).
  std::vector<Anomaly> stream(std::initializer_list<std::string> lines,
                              bool expire = false) {
    size_t before = service_->anomalies().count();
    for (const auto& l : lines) agent_->send_line(l);
    service_->drain();
    if (expire) {
      service_->heartbeat_advance(24L * 3600 * 1000);
      service_->drain();
    }
    auto all = service_->anomalies().all();
    return {all.begin() + static_cast<ptrdiff_t>(before), all.end()};
  }

  std::unique_ptr<LogLensService> service_;
  std::unique_ptr<FeedbackHandler> handler_;
  std::unique_ptr<Agent> agent_;
};

TEST_F(FeedbackTest, UnparsedLogLearnsNewPattern) {
  auto anomalies =
      stream({"2016/02/24 09:00:00 NewSubsystem booted region 7"});
  ASSERT_EQ(anomalies.size(), 1u);
  ASSERT_EQ(anomalies[0].type, AnomalyType::kUnparsedLog);
  auto result = handler_->accept_as_normal(anomalies[0]);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_NE(result->find("added pattern"), std::string::npos);
  // The same shape (different values) now parses.
  auto after = stream({"2016/02/24 10:11:12 NewSubsystem booted region 42"});
  EXPECT_TRUE(after.empty());
}

TEST_F(FeedbackTest, DurationViolationWidensWindow) {
  // A workflow 10x slower than anything in training.
  auto slow = stream({
      "2016/03/01 09:00:00 OpenFlow flow wf-slow1 from 10.0.0.1",
      "2016/03/01 09:00:05 StepFlow flow wf-slow1 work 17",
      "2016/03/01 09:00:10 CloseFlow flow wf-slow1 latency 120",
  });
  ASSERT_EQ(slow.size(), 1u);
  ASSERT_EQ(slow[0].type, AnomalyType::kDurationViolation);
  ASSERT_TRUE(handler_->accept_as_normal(slow[0]).ok());
  auto again = stream({
      "2016/03/01 10:00:00 OpenFlow flow wf-slow2 from 10.0.0.2",
      "2016/03/01 10:00:05 StepFlow flow wf-slow2 work 18",
      "2016/03/01 10:00:10 CloseFlow flow wf-slow2 latency 121",
  });
  EXPECT_TRUE(again.empty());
}

TEST_F(FeedbackTest, OccurrenceViolationWidensBounds) {
  auto noisy = stream({
      "2016/03/02 09:00:00.000 OpenFlow flow wf-n1 from 10.0.0.1",
      "2016/03/02 09:00:00.100 StepFlow flow wf-n1 work 1",
      "2016/03/02 09:00:00.200 StepFlow flow wf-n1 work 2",
      "2016/03/02 09:00:00.300 StepFlow flow wf-n1 work 3",
      "2016/03/02 09:00:00.400 StepFlow flow wf-n1 work 4",
      "2016/03/02 09:00:01.000 CloseFlow flow wf-n1 latency 120",
  });
  ASSERT_FALSE(noisy.empty());
  const Anomaly* occurrence = nullptr;
  for (const auto& a : noisy) {
    if (a.type == AnomalyType::kOccurrenceViolation) occurrence = &a;
  }
  ASSERT_NE(occurrence, nullptr);
  ASSERT_TRUE(handler_->accept_as_normal(*occurrence).ok());
  auto again = stream({
      "2016/03/02 10:00:00.000 OpenFlow flow wf-n2 from 10.0.0.1",
      "2016/03/02 10:00:00.100 StepFlow flow wf-n2 work 1",
      "2016/03/02 10:00:00.200 StepFlow flow wf-n2 work 2",
      "2016/03/02 10:00:00.300 StepFlow flow wf-n2 work 3",
      "2016/03/02 10:00:00.400 StepFlow flow wf-n2 work 4",
      "2016/03/02 10:00:01.000 CloseFlow flow wf-n2 latency 120",
  });
  EXPECT_TRUE(again.empty());
}

TEST_F(FeedbackTest, MissingEndAcceptedAsNewEndState) {
  // Events that legitimately end at StepFlow (say, fire-and-forget mode).
  auto truncated = stream({"2016/03/03 09:00:00 OpenFlow flow wf-t1 from "
                           "10.0.0.3",
                           "2016/03/03 09:00:00.500 StepFlow flow wf-t1 "
                           "work 9"},
                          /*expire=*/true);
  const Anomaly* missing_end = nullptr;
  for (const auto& a : truncated) {
    if (a.type == AnomalyType::kMissingEndState) missing_end = &a;
  }
  ASSERT_NE(missing_end, nullptr);
  ASSERT_TRUE(handler_->accept_as_normal(*missing_end).ok());
  // The same truncated shape now closes cleanly at StepFlow...
  auto again = stream({"2016/03/03 10:00:00 OpenFlow flow wf-t2 from "
                       "10.0.0.4",
                       "2016/03/03 10:00:00.500 StepFlow flow wf-t2 work 9"},
                      /*expire=*/true);
  for (const auto& a : again) {
    EXPECT_NE(a.type, AnomalyType::kMissingEndState) << a.reason;
  }
}

TEST_F(FeedbackTest, KeywordTokenAllowlisted) {
  auto alert =
      stream({"2016/03/04 09:00:00 OpenFlow flow wf-k1 from 10.0.0.1 "
              "failfast"});
  const Anomaly* keyword = nullptr;
  for (const auto& a : alert) {
    if (a.type == AnomalyType::kKeywordAlert) keyword = &a;
  }
  ASSERT_NE(keyword, nullptr);
  ASSERT_TRUE(handler_->accept_as_normal(*keyword).ok());
  auto again = stream(
      {"2016/03/04 10:00:00 OpenFlow flow wf-k2 from 10.0.0.1 failfast"});
  for (const auto& a : again) {
    EXPECT_NE(a.type, AnomalyType::kKeywordAlert);
  }
}

TEST_F(FeedbackTest, OutOfRangeValueWidensRange) {
  auto spike = stream({
      "2016/03/05 09:00:00.000 OpenFlow flow wf-r1 from 10.0.0.1",
      "2016/03/05 09:00:00.500 StepFlow flow wf-r1 work 5",
      "2016/03/05 09:00:01.000 CloseFlow flow wf-r1 latency 9000",
  });
  const Anomaly* range = nullptr;
  for (const auto& a : spike) {
    if (a.type == AnomalyType::kValueOutOfRange) range = &a;
  }
  ASSERT_NE(range, nullptr);
  ASSERT_TRUE(handler_->accept_as_normal(*range).ok());
  auto again = stream({
      "2016/03/05 10:00:00.000 OpenFlow flow wf-r2 from 10.0.0.1",
      "2016/03/05 10:00:00.500 StepFlow flow wf-r2 work 5",
      "2016/03/05 10:00:01.000 CloseFlow flow wf-r2 latency 8999",
  });
  for (const auto& a : again) {
    EXPECT_NE(a.type, AnomalyType::kValueOutOfRange) << a.reason;
  }
}

TEST_F(FeedbackTest, MalformedFeedbackRejected) {
  Anomaly bogus;
  bogus.type = AnomalyType::kDurationViolation;
  bogus.automaton_id = 99;  // no such automaton
  EXPECT_FALSE(handler_->accept_as_normal(bogus).ok());
  Anomaly no_details;
  no_details.type = AnomalyType::kOccurrenceViolation;
  no_details.automaton_id = 1;
  EXPECT_FALSE(handler_->accept_as_normal(no_details).ok());
  // Failed feedback must not have created junk model versions.
  int version = service_->model_store().latest(service_->model_name())->version;
  EXPECT_EQ(version, 1);
}

TEST_F(FeedbackTest, PatternFromLineShape) {
  GrokPattern p = pattern_from_line(
      "2016/02/23 09:00:31 worker started job j-17 on 10.0.0.8 in 250 ms",
      7);
  EXPECT_EQ(p.id(), 7);
  EXPECT_EQ(p.to_string(),
            "%{DATETIME:P7F1} worker started job %{NOTSPACE:P7F2} on "
            "%{IP:P7F3} in %{NUMBER:P7F4} ms");
}

}  // namespace
}  // namespace loglens
