// End-to-end observability: running the pipeline advances the engine,
// parser, detector, broker, and job metrics, the JobRunner emits periodic
// health reports, and the dashboard renders a live Prometheus page.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "service/dashboard.h"
#include "service/service.h"

namespace loglens {
namespace {

const std::vector<std::string> kTraining = {
    "2016/02/23 09:00:31 10.0.0.1 login user1",
    "2016/02/23 09:00:32 10.0.0.2 login user2",
    "2016/02/23 09:00:33 10.0.0.3 login user3",
    "2016/02/23 09:01:02 Connect DB 127.0.0.1 user abc123",
    "2016/02/23 09:01:09 Connect DB 10.1.1.5 user svc_batch",
    "2016/02/23 09:01:44 Connect DB 10.1.1.9 user reporter",
};

const std::vector<std::string> kProduction = {
    "2016/02/23 10:00:01 10.0.0.9 login bob",
    "2016/02/23 10:00:07 Connect DB 10.1.1.2 user etl",
    "kernel panic: something exploded",
};

// Sums a per-partition counter family over a service's partitions.
uint64_t sum_partitions(MetricsRegistry& registry, const std::string& name,
                        size_t partitions) {
  uint64_t total = 0;
  for (size_t p = 0; p < partitions; ++p) {
    total +=
        registry.counter(name, {{"partition", std::to_string(p)}}).value();
  }
  return total;
}

TEST(MetricsPipelineTest, CountersAdvanceEndToEnd) {
  MetricsRegistry registry;  // isolated from the global one
  ServiceOptions opts;
  opts.metrics = &registry;
  opts.metrics_report_every = 1;
  opts.build.discovery.max_dist = 0.45;
  LogLensService service(opts);
  service.train(kTraining);
  Agent agent = service.make_agent("test");
  agent.replay(kProduction);
  service.drain();
  service.heartbeat_advance(24L * 3600 * 1000);
  service.drain();

  // Engine: both stages ran batches and routed records.
  EXPECT_GT(
      registry.counter("loglens_engine_batches_total", {{"stage", "parser"}})
          .value(),
      0u);
  EXPECT_GT(
      registry.counter("loglens_engine_batches_total", {{"stage", "detector"}})
          .value(),
      0u);
  EXPECT_GE(
      registry.counter("loglens_engine_records_total", {{"stage", "parser"}})
          .value(),
      kProduction.size());
  EXPECT_GT(registry
                .histogram("loglens_engine_batch_duration_us",
                           {{"stage", "parser"}})
                .snapshot()
                .count,
            0u);

  // Parser: every production line was parsed, one is unparseable.
  EXPECT_GE(sum_partitions(registry, "loglens_parser_logs_total",
                           opts.parser_partitions),
            kProduction.size());
  EXPECT_GE(sum_partitions(registry, "loglens_parser_unparsed_total",
                           opts.parser_partitions),
            1u);
  EXPECT_GT(sum_partitions(registry, "loglens_parser_index_misses_total",
                           opts.parser_partitions),
            0u);
  uint64_t parse_samples = 0;
  for (size_t p = 0; p < opts.parser_partitions; ++p) {
    parse_samples += registry
                         .histogram("loglens_parser_parse_latency_us",
                                    {{"partition", std::to_string(p)}})
                         .snapshot()
                         .count;
  }
  EXPECT_GE(parse_samples, kProduction.size());

  // Detector: parsed logs arrived and heartbeat sweeps ran.
  EXPECT_GT(sum_partitions(registry, "loglens_detector_logs_total",
                           opts.detector_partitions),
            0u);
  EXPECT_GT(sum_partitions(registry, "loglens_detector_heartbeats_total",
                           opts.detector_partitions),
            0u);

  // Broker: ingest saw the agent's lines; heartbeats were emitted.
  EXPECT_GE(registry
                .counter("loglens_broker_messages_produced_total",
                         {{"topic", "ingest"}})
                .value(),
            kProduction.size());
  EXPECT_GT(registry.counter("loglens_heartbeat_emitted_total").value(), 0u);

  // Jobs: batches were accounted and health reports were published.
  EXPECT_GT(registry.counter("loglens_job_batches_total", {{"job", "parser"}})
                .value(),
            0u);
  Consumer reports(service.broker(), "metrics");
  auto batch = reports.poll(128);
  ASSERT_FALSE(batch.empty());
  EXPECT_EQ(batch.front().tag, kTagMetrics);
  auto parsed = Json::parse(batch.front().value);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->get_string("job").empty());
  ASSERT_NE(parsed->find("batches"), nullptr);
  EXPECT_GT(parsed->find("batches")->as_int(), 0);

  // Dashboard: the Prometheus page shows the live counters.
  Dashboard dashboard(service.anomalies(), service.model_store(),
                      service.log_store(), &registry);
  std::string page = dashboard.render_metrics();
  EXPECT_NE(page.find("loglens_engine_batches_total{stage=\"parser\"}"),
            std::string::npos);
  EXPECT_NE(page.find("loglens_parser_logs_total"), std::string::npos);
  EXPECT_NE(page.find("loglens_detector_logs_total"), std::string::npos);
  Json snapshot = dashboard.metrics_snapshot();
  ASSERT_TRUE(snapshot.find("histograms") != nullptr);
  EXPECT_FALSE(snapshot.find("histograms")->as_array().empty());

  // Spans were traced for both stages.
  bool parser_span = false;
  for (const auto& span : registry.recent_spans()) {
    if (span.name == "parser.batch") parser_span = true;
  }
  EXPECT_TRUE(parser_span);
}

TEST(MetricsPipelineTest, ModelUpdateCountsControlOps) {
  MetricsRegistry registry;
  ServiceOptions opts;
  opts.metrics = &registry;
  opts.build.discovery.max_dist = 0.45;
  LogLensService service(opts);
  service.train(kTraining);
  // Re-deploying the model rides the control channel into both engines; the
  // pending rebroadcast is applied at the start of the next non-empty batch.
  service.train(kTraining);
  Agent agent = service.make_agent("test");
  agent.replay({kProduction.front()});
  service.drain();
  EXPECT_GT(
      registry
          .counter("loglens_engine_control_ops_total", {{"stage", "parser"}})
          .value(),
      0u);
}

}  // namespace
}  // namespace loglens
