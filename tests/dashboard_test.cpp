#include "service/dashboard.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

class DashboardTest : public ::testing::Test {
 protected:
  DashboardTest() : dashboard_(anomalies_, models_, logs_) {}

  void add_anomaly(AnomalyType type, int64_t ts, const char* source,
                   const char* severity = "high") {
    Anomaly a;
    a.type = type;
    a.severity = severity;
    a.reason = "because";
    a.timestamp_ms = ts;
    a.source = source;
    a.event_id = "ev-x";
    a.logs = {"log line 1", "log line 2"};
    anomalies_.add(a);
  }

  AnomalyStore anomalies_;
  ModelStore models_;
  LogStore logs_;
  Dashboard dashboard_;
};

TEST_F(DashboardTest, RenderSummaryCounts) {
  logs_.add("D1", "raw", 0);
  logs_.add("D1", "raw2", 1);
  models_.put("default", Json("blob"));
  models_.put("default", Json("blob2"));
  add_anomaly(AnomalyType::kMissingEndState, 100, "D1");
  add_anomaly(AnomalyType::kMissingEndState, 200, "D1");
  add_anomaly(AnomalyType::kUnparsedLog, 300, "D2", "medium");

  std::string out = dashboard_.render();
  EXPECT_NE(out.find("archived logs: 2"), std::string::npos);
  EXPECT_NE(out.find("default(v2)"), std::string::npos);
  EXPECT_NE(out.find("anomalies: 3"), std::string::npos);
  EXPECT_NE(out.find("MISSING_END_STATE: 2"), std::string::npos);
  EXPECT_NE(out.find("UNPARSED_LOG: 1"), std::string::npos);
  EXPECT_NE(out.find("D2: 1"), std::string::npos);
  EXPECT_NE(out.find("high: 2"), std::string::npos);
}

TEST_F(DashboardTest, TimelineShowsClusters) {
  // Two clusters: around t=10s and t=70s.
  for (int i = 0; i < 8; ++i) {
    add_anomaly(AnomalyType::kMissingEndState, 10'000 + i * 100, "SS7");
  }
  add_anomaly(AnomalyType::kMissingEndState, 70'000, "SS7");
  std::string out = dashboard_.render_timeline(0, 80'000, 10'000);
  EXPECT_NE(out.find(" 8"), std::string::npos);  // the dense bucket
  // More #s for the dense bucket than the sparse one.
  size_t dense_pos = out.find(" 8\n");
  ASSERT_NE(dense_pos, std::string::npos);
  EXPECT_NE(out.find("####"), std::string::npos);
}

TEST_F(DashboardTest, TimelineEdgeCases) {
  EXPECT_TRUE(dashboard_.render_timeline(0, 100, 0).empty());
  EXPECT_TRUE(dashboard_.render_timeline(100, 100, 10).empty());
  // Empty store: renders buckets with zero counts, no crash.
  std::string out = dashboard_.render_timeline(0, 30'000, 10'000);
  EXPECT_NE(out.find(" 0\n"), std::string::npos);
}

TEST_F(DashboardTest, RecentListsLatestWithDetail) {
  for (int i = 0; i < 5; ++i) {
    add_anomaly(AnomalyType::kDurationViolation, 1000 + i, "D1");
  }
  std::string out = dashboard_.render_recent(2);
  // Exactly two entries rendered.
  size_t count = 0;
  for (size_t pos = out.find("DURATION_VIOLATION"); pos != std::string::npos;
       pos = out.find("DURATION_VIOLATION", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_NE(out.find("because"), std::string::npos);
  EXPECT_NE(out.find("> log line 1"), std::string::npos);
  EXPECT_NE(out.find("event=ev-x"), std::string::npos);
}

TEST_F(DashboardTest, SourceSpikesRanksSourcesInWindow) {
  // Three sources evicting in the hour window, one outside it, one of a
  // different type — the leaderboard counts only in-window evictions.
  for (int i = 0; i < 5; ++i) {
    add_anomaly(AnomalyType::kOpenStateEvicted, 10'000 + i, "gateway");
  }
  add_anomaly(AnomalyType::kOpenStateEvicted, 10'100, "db");
  add_anomaly(AnomalyType::kOpenStateEvicted, 10'200, "db");
  add_anomaly(AnomalyType::kOpenStateEvicted, 10'300, "auth");
  add_anomaly(AnomalyType::kOpenStateEvicted, 99'000'000, "gateway");
  add_anomaly(AnomalyType::kMissingEndState, 10'400, "gateway");

  std::string out = dashboard_.render_source_spikes(
      AnomalyType::kOpenStateEvicted, 0, 3'600'000);
  EXPECT_NE(out.find("source spikes: OPEN_STATE_EVICTED"), std::string::npos);
  EXPECT_NE(out.find("gateway"), std::string::npos);
  // Heaviest source first.
  EXPECT_LT(out.find("gateway"), out.find("db"));
  EXPECT_LT(out.find("db"), out.find("auth"));
  EXPECT_NE(out.find(" 5\n"), std::string::npos);
  EXPECT_NE(out.find(" 2\n"), std::string::npos);
  // The plan line is always present (query-stats visibility).
  EXPECT_NE(out.find("docs scanned:"), std::string::npos);
}

TEST_F(DashboardTest, SourceSpikesEmptyWindowSaysNone) {
  add_anomaly(AnomalyType::kOpenStateEvicted, 99'000'000, "gateway");
  std::string out = dashboard_.render_source_spikes(
      AnomalyType::kOpenStateEvicted, 0, 3'600'000);
  EXPECT_NE(out.find("  none"), std::string::npos);
}

TEST_F(DashboardTest, EmptyStoresRenderCleanly) {
  std::string out = dashboard_.render();
  EXPECT_NE(out.find("anomalies: 0"), std::string::npos);
  EXPECT_TRUE(dashboard_.render_recent(5).empty());
}

}  // namespace
}  // namespace loglens
