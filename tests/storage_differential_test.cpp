// Seeded differential proof that the tiered segment engine is byte-identical
// to a plain in-memory store (PR 5 / PR 8 style).
//
// Each seed replays a random workload — inserts of messy documents
// (duplicate keys, doubles, missing fields, non-object values under keys),
// explicit and threshold-driven flushes, compactions, queries with random
// clause mixes and limits, JSONL save/load round trips, and hard kills that
// drop the hot segment and reopen over the surviving segment files —
// simultaneously against the DocumentStore under test and an embedded
// reference that is just a vector plus the documented predicate. Every
// query/count/get result must match the reference byte-for-byte (compared
// through dump()), ids must stay stable across flush and compaction, and a
// kill must recover exactly the flushed prefix.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/document_store.h"

namespace loglens {
namespace {

namespace fs = std::filesystem;

// The documented query semantics, restated independently of the engine.
bool ref_matches(const Json& doc, const Query& q) {
  for (const auto& c : q.clauses) {
    const Json* v = doc.find(c.field);
    if (v == nullptr) return false;
    if (c.kind == QueryClause::Kind::kTerm) {
      if (!v->is_string() || v->as_string() != c.term) return false;
    } else {
      if (!v->is_number()) return false;
      const int64_t n = v->as_int();
      if (n < c.min || n > c.max) return false;
    }
  }
  return true;
}

// The seed-era store, reduced to its essence: a vector in insertion order.
struct ReferenceStore {
  std::vector<Json> docs;

  uint64_t insert(Json d) {
    docs.push_back(std::move(d));
    return docs.size() - 1;
  }
  std::optional<Json> get(uint64_t id) const {
    if (id >= docs.size()) return std::nullopt;
    return docs[id];
  }
  std::vector<Json> query(const Query& q) const {
    std::vector<Json> out;
    for (const auto& d : docs) {
      if (out.size() >= q.limit) break;
      if (ref_matches(d, q)) out.push_back(d);
    }
    return out;
  }
  size_t count(const Query& q) const {
    size_t n = 0;
    for (const auto& d : docs) {
      if (ref_matches(d, q)) ++n;
    }
    return n;
  }
  // A hard kill loses everything after the flushed prefix.
  void truncate(size_t n) {
    if (n < docs.size()) docs.resize(n);
  }
};

Json random_doc(Rng& rng) {
  static const std::vector<std::string> kSources = {"web", "db", "cache",
                                                    "auth", "edge"};
  static const std::vector<std::string> kLevels = {"info", "warn", "error"};
  JsonObject o;
  if (rng.chance(0.9)) {
    o.emplace_back("source", Json(rng.pick(kSources)));
  }
  if (rng.chance(0.85)) {
    o.emplace_back("ts", Json(rng.range(0, 999)));
  } else if (rng.chance(0.3)) {
    o.emplace_back("ts", Json(rng.uniform() * 1000.0));  // double timestamp
  }
  if (rng.chance(0.5)) {
    o.emplace_back("level", Json(rng.pick(kLevels)));
  }
  if (rng.chance(0.15)) {
    // Duplicate key: only the first occurrence is queryable (Json::find).
    o.emplace_back("source", Json(rng.pick(kSources)));
  }
  if (rng.chance(0.1)) {
    o.emplace_back("tags", Json(JsonArray{Json("a"), Json(rng.range(0, 9))}));
  }
  if (rng.chance(0.2)) {
    o.emplace_back("msg", Json(rng.ident(1 + rng.below(12))));
  }
  return Json(std::move(o));
}

Query random_query(Rng& rng) {
  static const std::vector<std::string> kSources = {"web", "db", "cache",
                                                    "auth", "edge", "nope"};
  static const std::vector<std::string> kLevels = {"info", "warn", "error",
                                                   "fatal"};
  Query q;
  const size_t n_clauses = rng.below(4);
  for (size_t i = 0; i < n_clauses; ++i) {
    switch (rng.below(3)) {
      case 0:
        q.clauses.push_back(QueryClause::Term("source", rng.pick(kSources)));
        break;
      case 1:
        q.clauses.push_back(QueryClause::Term("level", rng.pick(kLevels)));
        break;
      default: {
        const int64_t lo = rng.range(-100, 999);
        q.clauses.push_back(
            QueryClause::Range("ts", lo, lo + rng.range(0, 400)));
        break;
      }
    }
  }
  if (rng.chance(0.3)) q.limit = rng.below(20);
  return q;
}

std::string dump_all(const std::vector<Json>& docs) {
  std::string out;
  for (const auto& d : docs) {
    d.dump_to(out);
    out.push_back('\n');
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void check_equivalent(uint64_t seed, size_t op, const DocumentStore& store,
                      const ReferenceStore& ref, const Query& q) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " op=" + std::to_string(op));
  auto got = store.query(q);
  auto want = ref.query(q);
  ASSERT_EQ(got.size(), want.size());
  ASSERT_EQ(dump_all(got), dump_all(want));
}

void run_seed(uint64_t seed) {
  Rng rng(seed);
  const std::string dir =
      (fs::temp_directory_path() /
       ("loglens_storage_diff_" + std::to_string(seed)))
          .string();
  fs::remove_all(dir);

  DocumentStoreOptions opts;
  opts.dir = dir;
  opts.hot_max_docs = 1 + rng.below(8);  // tiny: exercise many flushes
  opts.auto_compact = rng.chance(0.5);
  opts.compact_min_segments = 2 + rng.below(3);
  opts.compact_max_docs = 1u << (4 + rng.below(8));
  opts.name = "diff";

  auto store = std::make_unique<DocumentStore>(opts);
  ReferenceStore ref;
  const size_t ops = 120;

  for (size_t op = 0; op < ops; ++op) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " op=" + std::to_string(op));
    const uint64_t roll = rng.below(100);
    if (roll < 50) {
      Json d = random_doc(rng);
      Json copy = d;
      const uint64_t got = store->insert(std::move(d));
      const uint64_t want = ref.insert(std::move(copy));
      ASSERT_EQ(got, want);  // dense, stable ids
    } else if (roll < 65) {
      check_equivalent(seed, op, *store, ref, random_query(rng));
    } else if (roll < 73) {
      const Query q = random_query(rng);
      ASSERT_EQ(store->count(q), ref.count(q));
    } else if (roll < 81) {
      // get: in-range and out-of-range ids, spanning sealed + hot.
      const uint64_t id = rng.below(ref.docs.size() + 3);
      auto got = store->get(id);
      auto want = ref.get(id);
      ASSERT_EQ(got.has_value(), want.has_value());
      if (got.has_value()) ASSERT_EQ(got->dump(), want->dump());
    } else if (roll < 88) {
      ASSERT_TRUE(store->flush().ok());
    } else if (roll < 93) {
      ASSERT_TRUE(store->compact().ok());
    } else if (roll < 97) {
      // JSONL round trip: the tiered save must be byte-identical to the
      // reference dump, and load must rebuild an equivalent store.
      const std::string path = dir + "/roundtrip.jsonl";
      ASSERT_TRUE(store->save_jsonl(path).ok());
      ASSERT_EQ(read_file(path), dump_all(ref.docs));
      DocumentStore reloaded;  // in-memory
      ASSERT_TRUE(reloaded.load_jsonl(path).ok());
      ASSERT_EQ(reloaded.size(), ref.docs.size());
      std::remove(path.c_str());
    } else {
      // Hard kill: the hot segment dies with the process; reopening over
      // the directory must recover exactly the flushed prefix, and ids
      // must keep extending densely from there.
      const size_t flushed = store->size() - store->hot_count();
      store.reset();
      ref.truncate(flushed);
      store = std::make_unique<DocumentStore>(opts);
      ASSERT_EQ(store->size(), flushed);
      ASSERT_EQ(store->hot_count(), 0u);
    }
  }

  // Final sweep: full equality plus a battery of fixed probes.
  Query all;
  check_equivalent(seed, ops, *store, ref, all);
  ASSERT_EQ(store->size(), ref.docs.size());
  for (const char* src : {"web", "db", "nope"}) {
    Query q;
    q.clauses.push_back(QueryClause::Term("source", src));
    q.clauses.push_back(QueryClause::Range("ts", 200, 700));
    check_equivalent(seed, ops + 1, *store, ref, q);
    ASSERT_EQ(store->count(q), ref.count(q));
  }

  store.reset();
  fs::remove_all(dir);
}

TEST(StorageDifferential, SixHundredSeeds) {
  for (uint64_t seed = 1; seed <= 600; ++seed) {
    run_seed(seed);
    if (HasFatalFailure()) {
      FAIL() << "differential divergence at seed " << seed
             << " (rerun: run_seed(" << seed << "))";
    }
  }
}

}  // namespace
}  // namespace loglens
