// Deterministic schedule exploration over the instrumented concurrent core
// (docs/STATIC_ANALYSIS.md §5).
//
// Each test replays a known-racy scenario across a range of PCT seeds; one
// seed names exactly one thread interleaving, so any failure is reproduced
// by re-running with the printed seed:
//
//   LOGLENS_SCHED_SEED=<seed> ./sched_explorer_test
//   ./sched_explorer_test --sched-seed=<seed>
//
// The seed count comes from LOGLENS_SCHED_SEEDS (CI runs 200; the local
// default keeps the suite fast). Invariant violations print the failing
// seed and a replay line to stderr and to $LOGLENS_SCHED_FAILURE_FILE;
// controller-detected failures (deadlock, step bound, stall) abort with the
// same information plus the schedule-trace tail.
//
// When the build compiled the schedule points out (release tier-1 runs),
// every scenario degrades to a plain uncontrolled smoke run: same code, OS
// scheduling, one iteration — the test still guards against gross breakage
// without pretending to explore schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "broker/broker.h"
#include "common/lock_rank.h"
#include "common/sched.h"
#include "datagen/datasets.h"
#include "metrics/metrics.h"
#include "service/service.h"
#include "streaming/broadcast.h"
#include "streaming/engine.h"

namespace loglens {
namespace {

// Seed pinned on the command line / environment; 0 = explore a range.
std::optional<uint64_t> g_pinned_seed;

struct SeedRange {
  uint64_t first = 1;
  uint64_t count = 1;
};

// The seed range a scenario explores: the pinned seed alone when one was
// given, otherwise [1, N] with N from LOGLENS_SCHED_SEEDS (default
// `default_count`, scaled down for intrinsically expensive scenarios by the
// caller).
SeedRange seed_range(uint64_t default_count) {
  if (g_pinned_seed) return {*g_pinned_seed, 1};
  // NOLINTNEXTLINE(concurrency-mt-unsafe) - read before any thread spawns
  if (const char* env = std::getenv("LOGLENS_SCHED_SEEDS")) {
    const uint64_t n = std::strtoull(env, nullptr, 10);
    if (n > 0) return {1, n};
  }
  return {1, default_count};
}

// Prints an invariant violation with its reproducing seed to stderr (and to
// $LOGLENS_SCHED_FAILURE_FILE for CI artifact upload). The gtest failure is
// raised at the call site so the test name stays attached.
std::string report_violation(const char* scenario, uint64_t seed,
                             const std::string& what) {
  std::string msg = "sched_explorer: invariant violation\n  scenario=";
  msg += scenario;
  msg += " seed=" + std::to_string(seed);
  msg += "\n  replay: LOGLENS_SCHED_SEED=" + std::to_string(seed) +
         " ./sched_explorer_test  (or --sched-seed=" + std::to_string(seed) +
         ")\n  " + what + "\n";
  std::fputs(msg.c_str(), stderr);
  // NOLINTNEXTLINE(concurrency-mt-unsafe) - tests read env single-threaded
  if (const char* path = std::getenv("LOGLENS_SCHED_FAILURE_FILE")) {
    if (std::FILE* f = std::fopen(path, "ae")) {
      std::fputs(msg.c_str(), f);
      std::fclose(f);
    }
  }
  return msg;
}

// Runs `body` under a controller seeded with `seed` and returns the
// schedule-trace hash. Without compiled-in points (release tier-1) the body
// runs uncontrolled and the hash is 0.
uint64_t run_seed(uint64_t seed, sched::Options options,
                  const std::function<void()>& body) {
  if (!sched::points_compiled_in()) {
    body();
    return 0;
  }
  options.seed = seed;
  sched::ScheduleController controller(options);
  controller.attach();
  body();
  controller.detach();
  return controller.trace_hash();
}

// Default exploration knobs for the pipeline scenarios: a horizon on the
// order of a small scenario's step count so the d priority-change points
// actually land inside it.
sched::Options scenario_options() {
  sched::Options o;
  o.priority_change_points = 3;
  o.change_point_horizon = 2000;
  o.max_steps = 300000;
  return o;
}

// Drives one scenario across the seed range, failing (with a replayable
// seed) on the first violation. `seed_divisor` scales the explored range
// down for intrinsically expensive scenarios (a pinned seed always runs).
void explore(const char* name, uint64_t default_seeds, sched::Options options,
             const std::function<std::string()>& scenario,
             uint64_t seed_divisor = 1) {
  SeedRange range = seed_range(default_seeds);
  if (!g_pinned_seed && seed_divisor > 1) {
    range.count = std::max<uint64_t>(1, range.count / seed_divisor);
  }
  if (!sched::points_compiled_in()) range.count = 1;  // smoke mode
  for (uint64_t seed = range.first; seed < range.first + range.count; ++seed) {
    std::string err;
    (void)run_seed(seed, options, [&] { err = scenario(); });
    if (!err.empty()) {
      FAIL() << report_violation(name, seed, err);
    }
  }
}

// --- scenario 1: bursty producer vs slow blocking consumer ---------------
//
// Races Broker::produce's end-offset publish + waiter notify against
// Consumer::poll_blocking's check-register-park dance (the historical lost
// -wakeup shape). Invariants: nothing is lost, per-key FIFO holds.
std::string produce_vs_slow_sink() {
  constexpr size_t kMessages = 12;
  Broker broker;
  (void)broker.create_topic("in", 2);
  std::thread producer = sched::spawn_named("producer", [&broker] {
    for (size_t i = 0; i < kMessages; ++i) {
      Message m;
      m.key = "k" + std::to_string(i % 3);
      m.value = std::to_string(i);
      m.source = "sched";
      (void)broker.produce("in", std::move(m));
      if (i % 4 == 3) sched::sleep_for_ms(1);  // bursty, not steady
    }
  });
  Consumer consumer(broker, "in");
  std::vector<Message> got;
  int empty_polls = 0;
  while (got.size() < kMessages && empty_polls < 400) {
    auto batch = consumer.poll_blocking(/*max=*/4, /*timeout_ms=*/5,
                                        /*min_messages=*/2);
    if (batch.empty()) ++empty_polls;
    for (auto& m : batch) got.push_back(std::move(m));
  }
  {
    sched::BlockingRegion joining;
    producer.join();
  }
  for (auto batch = consumer.poll(kMessages); !batch.empty();
       batch = consumer.poll(kMessages)) {
    for (auto& m : batch) got.push_back(std::move(m));
  }
  if (got.size() != kMessages) {
    return "lost messages: delivered " + std::to_string(got.size()) + " of " +
           std::to_string(kMessages);
  }
  std::map<std::string, int> last_per_key;
  for (const Message& m : got) {
    const int v = std::stoi(m.value);
    auto it = last_per_key.find(m.key);
    if (it != last_per_key.end() && v < it->second) {
      return "per-key FIFO violated: key " + m.key + " delivered " +
             std::to_string(v) + " after " + std::to_string(it->second);
    }
    last_per_key[m.key] = v;
  }
  return "";
}

TEST(SchedExplorer, ProduceVsSlowSink) {
  explore("produce_vs_slow_sink", 25, scenario_options(),
          produce_vs_slow_sink);
}

// --- scenario 2: control-op drain vs run_batch ---------------------------
//
// A driver thread enqueues rebroadcasts while batches run. The engine's
// contract: controls apply *between* micro-batches, so within one batch
// every partition observes the same model version, and versions never go
// backwards.
class VersionProbeTask : public PartitionTask {
 public:
  VersionProbeTask(Broadcast<int>& model,
                   std::vector<std::vector<int>>& seen)
      : model_(model), seen_(seen) {}

  void on_batch_start(TaskContext& ctx) override {
    // The worker-side pull path (cache probe, driver pull) is the race
    // under test; the broadcast payload doubles as its version.
    seen_[ctx.partition()].push_back(*model_.value(ctx.partition()));
  }
  void process(const Message& m, TaskContext& ctx) override {
    const int now = *model_.value(ctx.partition());
    if (now != seen_[ctx.partition()].back()) {
      torn_.store(true, std::memory_order_relaxed);
    }
    Message out = m;
    ctx.emit(std::move(out));
  }

  static std::atomic<bool> torn_;

 private:
  Broadcast<int>& model_;
  std::vector<std::vector<int>>& seen_;
};

std::atomic<bool> VersionProbeTask::torn_{false};

std::string control_drain_vs_run_batch() {
  constexpr size_t kPartitions = 2;
  constexpr int kBatches = 6;
  constexpr int kUpdates = 5;
  std::vector<std::vector<int>> seen(kPartitions);
  Broadcast<int> model(/*id=*/1, /*value=*/0, kPartitions);
  VersionProbeTask::torn_.store(false);
  MetricsRegistry registry;
  EngineOptions opts;
  opts.partitions = kPartitions;
  opts.workers = 2;
  opts.metrics = &registry;
  opts.partitioner = [](const Message& m, size_t n) {
    return static_cast<size_t>(std::stoul(m.key)) % n;
  };
  StreamEngine engine(opts, [&](size_t) {
    return std::make_unique<VersionProbeTask>(model, seen);
  });
  std::thread updater = sched::spawn_named("updater", [&] {
    for (int k = 1; k <= kUpdates; ++k) {
      engine.enqueue_control([&model, k] { model.update(k); });
      sched::sleep_for_ms(1);
    }
  });
  for (int b = 0; b < kBatches; ++b) {
    std::vector<Message> input;
    for (size_t k = 0; k < 2 * kPartitions; ++k) {
      Message m;
      m.key = std::to_string(k);
      m.value = "x";
      input.push_back(std::move(m));
    }
    BatchResult r = engine.run_batch(std::move(input));
    if (r.input_records != 2 * kPartitions) {
      return "batch dropped input: " + std::to_string(r.input_records);
    }
  }
  {
    sched::BlockingRegion joining;
    updater.join();
  }
  (void)engine.run_batch({});  // drain any still-pending controls
  if (model.version() != kUpdates) {
    return "expected " + std::to_string(kUpdates) +
           " rebroadcasts applied, version is " +
           std::to_string(model.version());
  }
  if (VersionProbeTask::torn_.load()) {
    return "a batch observed two model versions (mid-batch rebroadcast)";
  }
  for (size_t p = 0; p < kPartitions; ++p) {
    if (seen[p].size() != seen[0].size()) {
      return "partitions ran different batch counts";
    }
  }
  for (size_t b = 0; b < seen[0].size(); ++b) {
    for (size_t p = 1; p < kPartitions; ++p) {
      if (seen[p][b] != seen[0][b]) {
        return "batch " + std::to_string(b) +
               " saw version skew across partitions: " +
               std::to_string(seen[0][b]) + " vs " +
               std::to_string(seen[p][b]);
      }
    }
    if (b > 0 && seen[0][b] < seen[0][b - 1]) {
      return "model version went backwards across batches";
    }
  }
  return "";
}

TEST(SchedExplorer, ControlDrainVsRunBatch) {
  explore("control_drain_vs_run_batch", 25, scenario_options(),
          control_drain_vs_run_batch);
}

// --- scenario 3: recover() vs in-flight batches --------------------------
//
// A live service (background runners) takes a recover() — checkpoint
// restore + offset rewind — while batches are in flight. The service must
// come out unparked and the recovery must count exactly once. The model is
// trained once (uncontrolled) and restored per seed, so each seed pays for
// the race, not for pattern discovery.
class RecoverScenario {
 public:
  RecoverScenario()
      : dataset_(make_d1(0.02)),
        base_checkpoint_((std::filesystem::temp_directory_path() /
                          "loglens_sched_base_ckpt.json")
                             .string()) {
    ServiceOptions opts = service_options("");
    LogLensService trainer(opts);
    trainer.train(dataset_.training);
    if (!trainer.checkpoint(base_checkpoint_).ok()) {
      std::abort();  // setup failure, not a schedule finding
    }
    const size_t stream = std::min<size_t>(dataset_.testing.size(), 24);
    first_.assign(dataset_.testing.begin(),
                  dataset_.testing.begin() + stream / 2);
    second_.assign(dataset_.testing.begin() + stream / 2,
                   dataset_.testing.begin() + stream);
  }

  ~RecoverScenario() { std::remove(base_checkpoint_.c_str()); }

  std::string run() {
    const std::string ckpt = (std::filesystem::temp_directory_path() /
                              "loglens_sched_recover_ckpt.json")
                                 .string();
    MetricsRegistry registry;
    ServiceOptions opts = service_options(ckpt);
    opts.metrics = &registry;
    LogLensService service(opts);
    if (!service.restore(base_checkpoint_).ok()) {
      return "restore of the pre-trained checkpoint failed";
    }
    Agent agent = service.make_agent("D1");
    agent.replay(first_);
    service.drain();
    if (!service.checkpoint(ckpt).ok()) return "checkpoint failed";

    service.start();
    agent.replay(second_);
    Status recovered = service.recover();  // races the in-flight batches
    if (!recovered.ok()) {
      return "recover() failed: " + recovered.message();
    }
    // Let the rewound redelivery flow for a bounded stretch of virtual
    // time, then quiesce.
    for (int i = 0; i < 50 && !service.failed(); ++i) {
      sched::sleep_for_ms(2);
    }
    service.stop();
    service.drain();
    std::remove(ckpt.c_str());
    if (service.failed()) {
      return "service parked on a fatal batch after recover()";
    }
    if (service.recoveries() != 1) {
      return "expected exactly one recovery, counted " +
             std::to_string(service.recoveries());
    }
    return "";
  }

 private:
  static ServiceOptions service_options(const std::string& checkpoint_path) {
    ServiceOptions opts;
    opts.build.discovery = recommended_discovery("D1");
    opts.parser_partitions = 1;
    opts.detector_partitions = 1;
    opts.workers = 1;
    opts.metrics_report_every = 0;
    opts.checkpoint_path = checkpoint_path;
    return opts;
  }

  Dataset dataset_;
  std::string base_checkpoint_;
  std::vector<std::string> first_;
  std::vector<std::string> second_;
};

TEST(SchedExplorer, RecoverVsInFlightBatches) {
  RecoverScenario scenario;
  sched::Options opts = scenario_options();
  opts.change_point_horizon = 20000;
  opts.max_steps = 2000000;
  // The full-pipeline scenario costs far more steps per seed than the toy
  // ones; a quarter of the seed budget keeps the suite inside its timeout
  // while still exploring dozens of interleavings in CI.
  explore("recover_vs_inflight", 24, opts,
          [&scenario] { return scenario.run(); }, /*seed_divisor=*/4);
}

// --- scenario 4: redelivery (seek) vs batched offset commit --------------
//
// A rewinder thread seeks the consumer back to offset 0 while the owner
// polls. poll's read-fetch-advance is a single critical section, so each
// poll window must be internally coherent (strictly increasing seqs) even
// when a seek lands between polls, and redelivery must converge on exactly
// the full seq set.
std::string redelivery_vs_commit() {
  constexpr size_t kMessages = 10;
  Broker broker;
  (void)broker.create_topic("t", 1);
  for (size_t i = 0; i < kMessages; ++i) {
    Message m;
    m.key = "k";
    m.value = std::to_string(i);
    (void)broker.produce("t", std::move(m));
  }
  Consumer consumer(broker, "t");
  std::atomic<size_t> delivered{0};
  std::atomic<bool> rewound{false};
  std::thread rewinder = sched::spawn_named("rewinder", [&] {
    for (int i = 0; i < 1000 && delivered.load() < kMessages / 2; ++i) {
      sched::sleep_for_ms(1);
    }
    consumer.seek({0});  // redeliver the whole partition
    rewound.store(true);
  });
  std::set<int64_t> unique;
  size_t total = 0;
  std::string err;
  for (int spins = 0; spins < 1000; ++spins) {
    auto batch = consumer.poll(4);
    if (batch.empty()) {
      if (rewound.load() && unique.size() == kMessages &&
          consumer.caught_up()) {
        break;
      }
      sched::sleep_for_ms(1);
      continue;
    }
    int64_t prev = -1;
    for (const Message& m : batch) {
      if (m.seq <= prev) {
        err = "incoherent poll window: seq " + std::to_string(m.seq) +
              " after " + std::to_string(prev);
      }
      prev = m.seq;
      unique.insert(m.seq);
      ++total;
    }
    delivered.store(unique.size());
  }
  {
    sched::BlockingRegion joining;
    rewinder.join();
  }
  if (!err.empty()) return err;
  if (unique.size() != kMessages) {
    return "redelivery did not converge: " + std::to_string(unique.size()) +
           " unique seqs of " + std::to_string(kMessages);
  }
  if (total < kMessages) {
    return "at-least-once violated: only " + std::to_string(total) +
           " deliveries";
  }
  return "";
}

TEST(SchedExplorer, RedeliveryVsOffsetCommit) {
  explore("redelivery_vs_commit", 25, scenario_options(),
          redelivery_vs_commit);
}

// --- replay determinism --------------------------------------------------
//
// One seed must name one interleaving: running the same scenario twice
// under the same seed yields byte-identical schedule traces (compared via
// the order-sensitive trace hash).
TEST(SchedExplorer, SameSeedSameSchedule) {
  if (!sched::points_compiled_in()) {
    GTEST_SKIP() << "schedule points compiled out in this build";
  }
  const uint64_t seed = g_pinned_seed.value_or(7);
  auto run_once = [&] {
    return run_seed(seed, scenario_options(), [] {
      const std::string err = produce_vs_slow_sink();
      ASSERT_EQ(err, "");
    });
  };
  const uint64_t first = run_once();
  const uint64_t second = run_once();
  EXPECT_NE(first, 0u);
  EXPECT_EQ(first, second)
      << "seed " << seed << " produced two different schedules";
}

// --- planted bugs --------------------------------------------------------
//
// The explorer has to *find* races, not just survive correct code. A
// deliberately racy check-then-act (the fix would be a CAS) must be driven
// to its violation within the seed budget, and the failing seed must
// reproduce deterministically. All accesses are atomic — the bug is purely
// an ordering bug, so the TSan leg stays clean.
struct RacyClaim {
  std::atomic<int> claimed{0};

  void try_claim() {
    if (claimed.load() == 0) {              // check
      LOGLENS_SCHED_POINT("racy.claim_gap");  // the depth-1 window
      claimed.fetch_add(1);                 // act
    }
  }
};

bool planted_bug_fires(uint64_t seed) {
  sched::Options o;
  o.seed = seed;
  o.priority_change_points = 3;
  // The whole scenario is ~a dozen steps; keep the horizon on that scale
  // so the change points can land inside the race window.
  o.change_point_horizon = 24;
  o.max_steps = 20000;
  sched::ScheduleController controller(o);
  controller.attach();
  RacyClaim racy;
  std::thread t1 = sched::spawn_named("claim-1", [&] { racy.try_claim(); });
  std::thread t2 = sched::spawn_named("claim-2", [&] { racy.try_claim(); });
  {
    sched::BlockingRegion joining;
    t1.join();
    t2.join();
  }
  controller.detach();
  return racy.claimed.load() > 1;
}

TEST(SchedExplorer, PlantedOrderingBugFoundWithinSeedBudget) {
  if (!sched::points_compiled_in()) {
    GTEST_SKIP() << "schedule points compiled out in this build";
  }
  constexpr uint64_t kSeedBudget = 64;
  uint64_t failing_seed = 0;
  for (uint64_t seed = 1; seed <= kSeedBudget; ++seed) {
    if (planted_bug_fires(seed)) {
      failing_seed = seed;
      break;
    }
  }
  ASSERT_NE(failing_seed, 0u)
      << "planted check-then-act bug not found within " << kSeedBudget
      << " seeds";
  std::fprintf(stderr,
               "sched_explorer: planted bug first fires at seed %llu\n",
               static_cast<unsigned long long>(failing_seed));
  // The whole point of seeded exploration: the finding replays.
  EXPECT_TRUE(planted_bug_fires(failing_seed))
      << "failing seed " << failing_seed << " did not reproduce";
}

// A lost wakeup (predicate set, notify forgotten) must be reported as a
// deadlock with the reproducing seed, not hang until the ctest timeout.
TEST(SchedExplorerDeathTest, LostWakeupReportedAsDeadlock) {
  if (!sched::points_compiled_in()) {
    GTEST_SKIP() << "schedule points compiled out in this build";
  }
  EXPECT_DEATH(
      {
        sched::Options o;
        o.seed = 1;
        o.change_point_horizon = 32;
        sched::ScheduleController controller(o);
        controller.attach();
        RankedMutex flag_mu{lock_rank::kJobState};
        std::condition_variable_any flag_cv;
        bool woken = false;
        RankedMutex done_mu{lock_rank::kTrace};
        std::condition_variable_any done_cv;
        bool done = false;
        std::thread waiter = sched::spawn_named("waiter", [&] {
          {
            RankedMutexLock lock(flag_mu);
            // `woken` is never set: the "signaler" below forgot both the
            // store and the notify, so this wait can never return...
            while (!woken) sched::cv_wait(flag_cv, lock);
          }
          RankedMutexLock lock(done_mu);
          done = true;
          sched::cv_notify_all(done_cv);
        });
        // ...and the main thread waits on the waiter's completion, so every
        // live thread ends up blocked — the controller must call it.
        RankedMutexLock lock(done_mu);
        while (!done) sched::cv_wait(done_cv, lock);
      },
      "deadlock: every live thread is blocked");
}

}  // namespace
}  // namespace loglens

// Custom main: pins a single seed from --sched-seed=N or LOGLENS_SCHED_SEED
// (the replay workflow), and runs death tests in threadsafe mode because
// the statements under test spawn threads.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--sched-seed=", 13) == 0) {
      loglens::g_pinned_seed = std::strtoull(argv[i] + 13, nullptr, 10);
    }
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe) - read before any thread spawns
  if (const char* env = std::getenv("LOGLENS_SCHED_SEED")) {
    const uint64_t seed = std::strtoull(env, nullptr, 10);
    if (seed != 0) loglens::g_pinned_seed = seed;
  }
  return RUN_ALL_TESTS();
}
