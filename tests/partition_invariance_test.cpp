// Property: detection results are invariant to the engine's partitioning.
// The same trained model and the same test stream must yield the same set of
// anomalous event ids whether the service runs 1, 2, or 5 partitions per
// stage — because the parser stage keys parsed logs by event id, an event's
// logs always land on one detector partition.
#include <gtest/gtest.h>

#include <set>

#include "datagen/datasets.h"
#include "service/service.h"

namespace loglens {
namespace {

std::set<std::string> run_with_partitions(const Dataset& ds,
                                          size_t partitions) {
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery(ds.name);
  opts.parser_partitions = partitions;
  opts.detector_partitions = partitions;
  opts.workers = partitions;
  LogLensService service(opts);
  service.train(ds.training);
  Agent agent = service.make_agent(ds.name);
  agent.replay(ds.testing);
  service.drain();
  service.heartbeat_advance(24L * 3600 * 1000);
  service.drain();
  std::set<std::string> ids;
  for (const auto& a : service.anomalies().all()) {
    if (!a.event_id.empty()) ids.insert(a.event_id);
  }
  return ids;
}

class PartitionSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PartitionSweep, D1ResultsMatchSinglePartition) {
  Dataset d1 = make_d1(0.03);
  std::set<std::string> baseline = run_with_partitions(d1, 1);
  EXPECT_EQ(baseline, d1.anomalous_event_ids);
  EXPECT_EQ(run_with_partitions(d1, GetParam()), baseline);
}

INSTANTIATE_TEST_SUITE_P(Partitions, PartitionSweep,
                         ::testing::Values(2, 3, 5));

TEST(PartitionInvariance, D2AcrossPartitionCounts) {
  Dataset d2 = make_d2(0.03);
  auto one = run_with_partitions(d2, 1);
  auto four = run_with_partitions(d2, 4);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, d2.anomalous_event_ids);
}

}  // namespace
}  // namespace loglens
