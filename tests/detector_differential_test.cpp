// Differential harness for the deadline-indexed detector.
//
// `ReferenceSequenceDetector` below is the pre-deadline-index implementation
// kept alive as an executable specification: ordered-map open state, a full
// linear scan per heartbeat, an O(n) scan per eviction, and a per-validation
// std::map of occurrence counts. It shares NO state-management code with the
// production `SequenceDetector` — only the anomaly formatting helpers — so
// the two can disagree wherever the deadline index (lazy deletion,
// generations, rebuild-on-restore, heap eviction) has a bug.
//
// Seeded random traces drive both implementations through interleaved event
// IDs, out-of-order and missing timestamps, unknown patterns, non-monotonic
// heartbeat schedules, mid-stream model updates, snapshot/restore swaps, and
// forced evictions. Every operation must produce byte-identical anomaly
// streams (serialized JSON), and the runs must agree on open-event counts,
// semantic stats, and final snapshot bytes.
#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "automata/detector.h"
#include "common/rng.h"

namespace loglens {
namespace {

// ---------------------------------------------------------------------------
// Reference implementation (linear scans everywhere).
// ---------------------------------------------------------------------------

class ReferenceSequenceDetector {
 public:
  explicit ReferenceSequenceDetector(SequenceModel model,
                                     DetectorOptions options = {})
      : model_(std::move(model)), options_(options) {}

  std::vector<Anomaly> on_log(const ParsedLog& log, std::string_view source) {
    ++stats_.logs_seen;
    auto field_it = model_.id_fields.find(log.pattern_id);
    if (field_it == model_.id_fields.end()) return {};
    if (!pattern_known(log.pattern_id)) return {};
    const Json* id_value = nullptr;
    for (const auto& [k, v] : log.fields) {
      if (k == field_it->second) {
        id_value = &v;
        break;
      }
    }
    if (id_value == nullptr || !id_value->is_string() ||
        id_value->as_string().empty()) {
      return {};
    }
    const std::string& event_id = id_value->as_string();

    ++stats_.logs_tracked;
    OpenEvent& event = open_[event_id];
    if (event.logs.empty()) event.source = std::string(source);
    std::pair<int, int64_t> entry{log.pattern_id, log.timestamp_ms};
    if (options_.sort_by_log_time && log.timestamp_ms >= 0) {
      auto pos = std::upper_bound(
          event.logs.begin(), event.logs.end(), entry,
          [](const auto& a, const auto& b) { return a.second < b.second; });
      event.logs.insert(pos, entry);
    } else {
      event.logs.push_back(entry);
    }
    if (log.timestamp_ms >= 0) {
      if (event.first_ts < 0 || log.timestamp_ms < event.first_ts) {
        event.first_ts = log.timestamp_ms;
      }
      if (log.timestamp_ms > event.last_ts) event.last_ts = log.timestamp_ms;
    }
    if (event.raws.size() < options_.max_logs_per_event) {
      event.raws.push_back(log.raw);
    }

    const Automaton* candidate = candidate_for(event);
    if (candidate != nullptr &&
        candidate->end_patterns.contains(log.pattern_id)) {
      ++stats_.events_closed;
      auto node = open_.extract(event_id);
      return validate(node.key(), node.mapped(), /*at_end=*/true,
                      log.timestamp_ms);
    }

    // Eviction spec: earliest deadline first, ties by smallest ID; events
    // that can never expire (no timestamped log) go before everything.
    std::vector<Anomaly> out;
    if (open_.size() > options_.max_open_events) {
      auto victim = open_.end();
      bool victim_timeless = false;
      int64_t victim_deadline = 0;
      for (auto it = open_.begin(); it != open_.end(); ++it) {
        const bool timeless = it->second.first_ts < 0;
        const int64_t dl = timeless ? -1 : deadline_of(it->second);
        // Map iteration is ascending by ID, so strict comparisons keep the
        // smallest ID among ties.
        if (victim == open_.end() || (timeless && !victim_timeless) ||
            (timeless == victim_timeless && dl < victim_deadline)) {
          victim = it;
          victim_timeless = timeless;
          victim_deadline = dl;
        }
      }
      const Automaton* victim_candidate = candidate_for(victim->second);
      out.push_back(make_eviction_anomaly(
          victim->first, victim->second.source, victim->second.raws,
          victim_candidate != nullptr ? victim_candidate->id : -1,
          victim->second.last_ts, log.timestamp_ms, open_.size(),
          options_.max_open_events,
          victim_timeless ? -1 : victim_deadline));
      open_.erase(victim);
      ++stats_.evicted;
    }
    return out;
  }

  std::vector<Anomaly> on_heartbeat(int64_t log_time_ms) {
    ++stats_.heartbeats;
    std::vector<Anomaly> out;
    for (auto it = open_.begin(); it != open_.end();) {
      const OpenEvent& event = it->second;
      if (event.first_ts >= 0 && log_time_ms > deadline_of(event)) {
        ++stats_.events_expired;
        auto anomalies =
            validate(it->first, event, /*at_end=*/false, log_time_ms);
        out.insert(out.end(), anomalies.begin(), anomalies.end());
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
    return out;
  }

  void update_model(SequenceModel model) { model_ = std::move(model); }

  Json snapshot_state() const {
    JsonArray events;
    for (const auto& [id, event] : open_) {
      JsonObject e;
      e.emplace_back("id", Json(id));
      e.emplace_back("source", Json(event.source));
      e.emplace_back("first_ts", Json(event.first_ts));
      e.emplace_back("last_ts", Json(event.last_ts));
      JsonArray logs;
      for (const auto& [pid, ts] : event.logs) {
        JsonArray pair;
        pair.emplace_back(static_cast<int64_t>(pid));
        pair.emplace_back(ts);
        logs.emplace_back(Json(std::move(pair)));
      }
      e.emplace_back("logs", Json(std::move(logs)));
      JsonArray raws;
      for (const auto& r : event.raws) raws.emplace_back(r);
      e.emplace_back("raws", Json(std::move(raws)));
      events.emplace_back(Json(std::move(e)));
    }
    JsonObject obj;
    obj.emplace_back("open_events", Json(std::move(events)));
    return Json(std::move(obj));
  }

  Status restore_state(const Json& j) {
    if (!j.is_object()) return Status::Error("state snapshot not an object");
    const Json* events = j.find("open_events");
    if (events == nullptr || !events->is_array()) {
      return Status::Error("state snapshot missing open_events");
    }
    std::map<std::string, OpenEvent> restored;
    for (const auto& e : events->as_array()) {
      if (!e.is_object()) return Status::Error("open event not an object");
      std::string id(e.get_string("id"));
      if (id.empty()) return Status::Error("open event missing id");
      OpenEvent event;
      event.source = std::string(e.get_string("source"));
      event.first_ts = e.get_int("first_ts", -1);
      event.last_ts = e.get_int("last_ts", -1);
      if (const Json* logs = e.find("logs");
          logs != nullptr && logs->is_array()) {
        for (const auto& pair : logs->as_array()) {
          if (!pair.is_array() || pair.as_array().size() != 2) {
            return Status::Error("open event log entry malformed");
          }
          event.logs.emplace_back(
              static_cast<int>(pair.as_array()[0].as_int()),
              pair.as_array()[1].as_int());
        }
      }
      if (const Json* raws = e.find("raws");
          raws != nullptr && raws->is_array()) {
        for (const auto& r : raws->as_array()) {
          if (r.is_string()) event.raws.push_back(r.as_string());
        }
      }
      restored[std::move(id)] = std::move(event);
    }
    open_ = std::move(restored);
    return Status::Ok();
  }

  size_t open_events() const { return open_.size(); }
  const DetectorStats& stats() const { return stats_; }

 private:
  struct OpenEvent {
    std::vector<std::pair<int, int64_t>> logs;
    std::vector<std::string> raws;
    int64_t first_ts = -1;
    int64_t last_ts = -1;
    std::string source;
  };

  bool pattern_known(int pattern_id) const {
    for (const auto& a : model_.automata) {
      if (a.states.contains(pattern_id)) return true;
    }
    return false;
  }

  int64_t deadline_of(const OpenEvent& event) const {
    const Automaton* candidate = candidate_for(event);
    if (candidate != nullptr) {
      return event.first_ts + candidate->max_duration_ms;
    }
    return event.last_ts + options_.default_timeout_ms;
  }

  const Automaton* candidate_for(const OpenEvent& event) const {
    std::set<int> observed;
    for (const auto& [pid, _] : event.logs) observed.insert(pid);
    const Automaton* best = nullptr;
    for (const auto& a : model_.automata) {
      bool contains_all = std::all_of(
          observed.begin(), observed.end(),
          [&a](int pid) { return a.states.contains(pid); });
      if (!contains_all) continue;
      if (best == nullptr || a.states.size() < best->states.size() ||
          (a.states.size() == best->states.size() && a.id < best->id)) {
        best = &a;
      }
    }
    return best;
  }

  std::vector<Anomaly> validate(const std::string& event_id,
                                const OpenEvent& event, bool at_end,
                                int64_t close_time) {
    std::vector<Anomaly> out;
    if (event.logs.empty()) return out;
    const Automaton* automaton = candidate_for(event);
    if (automaton == nullptr) {
      std::set<int> observed;
      for (const auto& [pid, _] : event.logs) observed.insert(pid);
      size_t best_overlap = 0;
      for (const auto& a : model_.automata) {
        size_t overlap = 0;
        for (int pid : observed) {
          if (a.states.contains(pid)) ++overlap;
        }
        if (overlap > best_overlap) {
          best_overlap = overlap;
          automaton = &a;
        }
      }
      if (automaton == nullptr || best_overlap == 0) return out;
    }

    const int64_t anomaly_time =
        at_end || event.last_ts < 0 ? close_time : event.last_ts;
    auto emit = [&](AnomalyType type, std::string severity, std::string reason,
                    Json details = Json(JsonObject{})) {
      Anomaly a;
      a.type = type;
      a.severity = std::move(severity);
      a.reason = std::move(reason);
      a.timestamp_ms = anomaly_time;
      a.source = event.source;
      a.event_id = event_id;
      a.automaton_id = automaton->id;
      a.logs = event.raws;
      a.details = std::move(details);
      out.push_back(std::move(a));
    };

    const int first_pattern = event.logs.front().first;
    const int last_pattern = event.logs.back().first;
    const bool begin_ok = automaton->begin_patterns.contains(first_pattern);
    const bool end_ok =
        at_end && automaton->end_patterns.contains(last_pattern);

    if (!begin_ok) {
      emit(AnomalyType::kMissingBeginState, "high",
           "event starts with pattern " + std::to_string(first_pattern) +
               ", which is not a begin state of automaton " +
               std::to_string(automaton->id),
           Json(JsonObject{{"first_pattern",
                            Json(static_cast<int64_t>(first_pattern))}}));
    }
    if (!end_ok) {
      emit(AnomalyType::kMissingEndState, "high",
           at_end
               ? "event ends with pattern " + std::to_string(last_pattern) +
                     ", which is not an end state"
               : "event expired without reaching an end state of automaton " +
                     std::to_string(automaton->id),
           Json(JsonObject{
               {"last_pattern", Json(static_cast<int64_t>(last_pattern))},
               {"expired", Json(!at_end)}}));
    }

    std::map<int, int> occurrences;
    for (const auto& [pid, _] : event.logs) ++occurrences[pid];

    for (const auto& [pid, rule] : automaton->states) {
      auto it = occurrences.find(pid);
      int count = it == occurrences.end() ? 0 : it->second;
      if (count == 0) {
        if (rule.min_occurrences >= 1 &&
            !automaton->end_patterns.contains(pid) &&
            !automaton->begin_patterns.contains(pid)) {
          emit(AnomalyType::kMissingIntermediateState, "high",
               "state for pattern " + std::to_string(pid) +
                   " never occurred (min occurrence " +
                   std::to_string(rule.min_occurrences) + ")",
               Json(JsonObject{
                   {"pattern_id", Json(static_cast<int64_t>(pid))}}));
        }
        continue;
      }
      if (count < rule.min_occurrences || count > rule.max_occurrences) {
        emit(AnomalyType::kOccurrenceViolation, "medium",
             "pattern " + std::to_string(pid) + " occurred " +
                 std::to_string(count) + " times, outside [" +
                 std::to_string(rule.min_occurrences) + ", " +
                 std::to_string(rule.max_occurrences) + "]",
             Json(JsonObject{{"pattern_id", Json(static_cast<int64_t>(pid))},
                             {"count", Json(static_cast<int64_t>(count))}}));
      }
    }

    if (begin_ok && end_ok && event.first_ts >= 0 && event.last_ts >= 0) {
      int64_t duration = event.last_ts - event.first_ts;
      if (duration < automaton->min_duration_ms ||
          duration > automaton->max_duration_ms) {
        emit(AnomalyType::kDurationViolation, "medium",
             "event duration " + std::to_string(duration) + " ms outside [" +
                 std::to_string(automaton->min_duration_ms) + ", " +
                 std::to_string(automaton->max_duration_ms) + "] ms",
             Json(JsonObject{{"duration_ms", Json(duration)}}));
      }
    }

    if (options_.check_transitions && !automaton->transitions.empty()) {
      std::set<std::pair<int, int>> reported;
      for (size_t i = 1; i < event.logs.size(); ++i) {
        std::pair<int, int> edge{event.logs[i - 1].first,
                                 event.logs[i].first};
        if (!automaton->transitions.contains(edge) &&
            reported.insert(edge).second) {
          emit(AnomalyType::kUnknownTransition, "low",
               "transition " + std::to_string(edge.first) + " -> " +
                   std::to_string(edge.second) + " never seen in training",
               Json(JsonObject{
                   {"from", Json(static_cast<int64_t>(edge.first))},
                   {"to", Json(static_cast<int64_t>(edge.second))}}));
        }
      }
    }
    return out;
  }

  SequenceModel model_;
  DetectorOptions options_;
  std::map<std::string, OpenEvent> open_;
  DetectorStats stats_;
};

// ---------------------------------------------------------------------------
// Trace generation.
// ---------------------------------------------------------------------------

// Patterns for automaton i live at base i*10: begin = base, middles, end =
// base + size - 1. Pattern 99 is id-mapped but unknown to every automaton;
// pattern 77 has no id field at all.
SequenceModel random_model(Rng& rng) {
  SequenceModel m;
  const size_t n_automata = 1 + rng.below(3);
  for (size_t i = 0; i < n_automata; ++i) {
    Automaton a;
    a.id = static_cast<int>(i) + 1;
    const int base = (static_cast<int>(i) + 1) * 10;
    const int size = 2 + static_cast<int>(rng.below(4));  // 2..5 states
    a.begin_patterns = {base};
    a.end_patterns = {base + size - 1};
    for (int s = 0; s < size; ++s) {
      StateRule rule;
      rule.pattern_id = base + s;
      rule.min_occurrences = static_cast<int>(rng.below(2));  // 0 or 1
      rule.max_occurrences =
          rule.min_occurrences + 1 + static_cast<int>(rng.below(2));
      a.states[base + s] = rule;
      if (s > 0) a.transitions.insert({base + s - 1, base + s});
    }
    a.min_duration_ms = 0;
    a.max_duration_ms = rng.range(150, 2200);
    m.automata.push_back(std::move(a));
  }
  for (const auto& a : m.automata) {
    for (const auto& [pid, _] : a.states) m.id_fields[pid] = "F";
  }
  m.id_fields[99] = "F";
  return m;
}

ParsedLog trace_log(int pattern, const std::string& id, int64_t ts) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  if (pattern != 77) log.fields.emplace_back("F", Json(id));
  log.raw = "p" + std::to_string(pattern) + " " + id;
  return log;
}

std::string dump_all(const std::vector<Anomaly>& anomalies) {
  std::string out;
  for (const auto& a : anomalies) {
    out += a.to_json().dump();
    out += '\n';
  }
  return out;
}

void run_seed(uint64_t seed) {
  Rng rng(seed);
  DetectorOptions opts;
  opts.check_transitions = rng.chance(0.5);
  opts.default_timeout_ms = rng.range(300, 2000);
  if (rng.chance(0.4)) {
    opts.max_open_events = 3 + rng.below(6);  // force evictions
  }
  SequenceModel model = random_model(rng);
  SequenceDetector optimized(model, opts);
  ReferenceSequenceDetector reference(model, opts);

  std::vector<int> patterns;
  for (const auto& a : model.automata) {
    for (const auto& [pid, _] : a.states) patterns.push_back(pid);
  }

  int64_t now = 10'000;
  const size_t ops = 140;
  for (size_t op = 0; op < ops; ++op) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " op " +
                 std::to_string(op));
    now += rng.below(60);
    const uint64_t roll = rng.below(100);
    if (roll < 72) {
      // A log: usually a model pattern, sometimes unknown (99) or id-less
      // (77); timestamps jittered, sometimes far in the past, sometimes
      // absent entirely.
      int pattern;
      const uint64_t p = rng.below(100);
      if (p < 88) {
        pattern = patterns[rng.below(patterns.size())];
      } else if (p < 94) {
        pattern = 99;
      } else {
        pattern = 77;
      }
      std::string id = "ev" + std::to_string(rng.below(12));
      int64_t ts;
      const uint64_t t = rng.below(100);
      if (t < 70) {
        ts = now + static_cast<int64_t>(rng.below(400));
      } else if (t < 85) {
        ts = now - rng.range(0, 3000);  // out of order
      } else if (t < 95) {
        ts = -1;  // no timestamp
      } else {
        ts = now + rng.range(2000, 8000);  // far future
      }
      ParsedLog log = trace_log(pattern, id, ts);
      auto a = optimized.on_log(log, "difftest");
      auto b = reference.on_log(log, "difftest");
      ASSERT_EQ(dump_all(a), dump_all(b));
    } else if (roll < 85) {
      // Heartbeat; occasionally carrying an earlier clock than the last.
      int64_t hb = rng.chance(0.15) ? now - rng.range(0, 5000)
                                    : now + static_cast<int64_t>(
                                                rng.below(2500));
      auto a = optimized.on_heartbeat(hb);
      auto b = reference.on_heartbeat(hb);
      ASSERT_EQ(dump_all(a), dump_all(b));
    } else if (roll < 92) {
      // Dynamic model update: tweak learned durations or swap in a freshly
      // generated rule set (Section V-A / Table V semantics).
      if (rng.chance(0.5)) {
        for (auto& a : model.automata) {
          a.max_duration_ms = rng.range(100, 2500);
        }
      } else {
        model = random_model(rng);
      }
      optimized.update_model(model);
      reference.update_model(model);
    } else if (roll < 97) {
      // Snapshot/restore swap: both detectors resume from their own
      // snapshot in a fresh instance (deadline index rebuilt from scratch).
      Json snap_a = optimized.snapshot_state();
      Json snap_b = reference.snapshot_state();
      ASSERT_EQ(snap_a.dump(), snap_b.dump());
      optimized = SequenceDetector(model, opts);
      reference = ReferenceSequenceDetector(model, opts);
      ASSERT_TRUE(optimized.restore_state(snap_a).ok());
      ASSERT_TRUE(reference.restore_state(snap_b).ok());
    }
    ASSERT_EQ(optimized.open_events(), reference.open_events());
  }

  // Flush: everything with a timestamp expires at once. Events that never
  // saw a timestamped log can never expire (by design) and stay open in
  // both implementations.
  auto a = optimized.on_heartbeat(INT64_MAX / 2);
  auto b = reference.on_heartbeat(INT64_MAX / 2);
  ASSERT_EQ(dump_all(a), dump_all(b)) << "flush mismatch, seed " << seed;
  ASSERT_EQ(optimized.open_events(), reference.open_events());

  // Semantic stats agree (index internals — stale pops, rebuilds — are
  // intentionally excluded: the reference has no index).
  const DetectorStats& sa = optimized.stats();
  const DetectorStats& sb = reference.stats();
  EXPECT_EQ(sa.logs_seen, sb.logs_seen) << "seed " << seed;
  EXPECT_EQ(sa.logs_tracked, sb.logs_tracked) << "seed " << seed;
  EXPECT_EQ(sa.events_closed, sb.events_closed) << "seed " << seed;
  EXPECT_EQ(sa.events_expired, sb.events_expired) << "seed " << seed;
  EXPECT_EQ(sa.heartbeats, sb.heartbeats) << "seed " << seed;
  EXPECT_EQ(sa.evicted, sb.evicted) << "seed " << seed;

  ASSERT_EQ(optimized.snapshot_state().dump(),
            reference.snapshot_state().dump());
}

TEST(DetectorDifferential, OptimizedMatchesReferenceAcrossSeeds) {
  for (uint64_t seed = 1; seed <= 1200; ++seed) {
    run_seed(seed);
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "differential divergence at seed " << seed;
    }
  }
}

}  // namespace
}  // namespace loglens
