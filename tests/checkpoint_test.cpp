// Checkpoint/restore of stateful detection (extension; see detector.h).
//
// The paper's Section V-A warns that restarting a stateful streaming
// service loses all keyed state. LogLens avoids restarts for model updates;
// this extension covers the remaining case — crashes and planned migrations
// — by persisting every partition's open events and re-sharding them into a
// new service instance, even one with a different partition count.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "automata/detector.h"
#include "datagen/datasets.h"
#include "service/service.h"

namespace loglens {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// --- SequenceDetector-level round trip -----------------------------------

ParsedLog elog(int pattern, const std::string& id, int64_t ts) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = ts;
  log.fields.emplace_back("P" + std::to_string(pattern) + "F1", Json(id));
  log.raw = "p" + std::to_string(pattern) + " " + id;
  return log;
}

SequenceModel tiny_model() {
  SequenceModel m;
  m.id_fields = {{1, "P1F1"}, {2, "P2F1"}, {3, "P3F1"}};
  Automaton a;
  a.id = 1;
  a.begin_patterns = {1};
  a.end_patterns = {3};
  a.states[1] = {1, 1, 1};
  a.states[2] = {2, 1, 2};
  a.states[3] = {3, 1, 1};
  a.min_duration_ms = 0;
  a.max_duration_ms = 1000;
  m.automata.push_back(a);
  return m;
}

TEST(DetectorSnapshot, RoundTripPreservesOpenEvents) {
  SequenceDetector original(tiny_model());
  original.on_log(elog(1, "e1", 1000), "src");
  original.on_log(elog(2, "e1", 1100), "src");
  original.on_log(elog(1, "e2", 2000), "src");
  ASSERT_EQ(original.open_events(), 2u);

  Json snap = original.snapshot_state();
  // Survives a text round trip (as the file-based checkpoint does).
  auto reparsed = Json::parse(snap.dump());
  ASSERT_TRUE(reparsed.ok());

  SequenceDetector restored(tiny_model());
  ASSERT_TRUE(restored.restore_state(reparsed.value()).ok());
  EXPECT_EQ(restored.open_events(), 2u);

  // The restored detector closes e1 normally — no spurious anomalies.
  auto anomalies = restored.on_log(elog(3, "e1", 1300), "src");
  EXPECT_TRUE(anomalies.empty());
  // And expiry still works for e2 (missing end, plus the middle state that
  // never occurred).
  auto expired = restored.on_heartbeat(10'000);
  ASSERT_EQ(expired.size(), 2u);
  EXPECT_EQ(expired[0].type, AnomalyType::kMissingEndState);
  EXPECT_EQ(expired[1].type, AnomalyType::kMissingIntermediateState);
  EXPECT_EQ(expired[0].event_id, "e2");
  EXPECT_EQ(expired[0].source, "src");
  ASSERT_FALSE(expired[0].logs.empty());
}

TEST(DetectorSnapshot, RejectsMalformedSnapshots) {
  SequenceDetector d(tiny_model());
  EXPECT_FALSE(d.restore_state(Json("garbage")).ok());
  EXPECT_FALSE(d.restore_state(Json(JsonObject{})).ok());
  JsonObject bad;
  bad.emplace_back("open_events", Json(JsonArray{Json("not an object")}));
  EXPECT_FALSE(d.restore_state(Json(std::move(bad))).ok());
}

TEST(DetectorSnapshot, EmptyStateRoundTrips) {
  SequenceDetector d(tiny_model());
  SequenceDetector e(tiny_model());
  ASSERT_TRUE(e.restore_state(d.snapshot_state()).ok());
  EXPECT_EQ(e.open_events(), 0u);
}

// --- Service-level checkpoint/restore ------------------------------------

TEST(ServiceCheckpoint, ResumeOnFreshServiceFindsRemainingAnomalies) {
  Dataset d1 = make_d1(0.05);
  ServiceOptions opts;
  opts.build.discovery = recommended_discovery("D1");

  std::string path = temp_path("loglens_ckpt_test.json");

  std::set<std::string> detected;
  {
    // First service: half the stream, then checkpoint and "crash".
    LogLensService service(opts);
    service.train(d1.training);
    Agent agent = service.make_agent("D1");
    std::vector<std::string> half(d1.testing.begin(),
                                  d1.testing.begin() + d1.testing.size() / 2);
    agent.replay(half);
    service.drain();
    for (const auto& a : service.anomalies().all()) {
      if (!a.event_id.empty()) detected.insert(a.event_id);
    }
    ASSERT_TRUE(service.checkpoint(path).ok());
    EXPECT_GT(service.open_events(), 0u);
  }

  {
    // Second service, different partitioning, restored from the checkpoint.
    ServiceOptions opts2 = opts;
    opts2.detector_partitions = 5;
    LogLensService service(opts2);
    ASSERT_TRUE(service.restore(path).ok());
    EXPECT_GT(service.open_events(), 0u);

    Agent agent = service.make_agent("D1");
    std::vector<std::string> rest(d1.testing.begin() + d1.testing.size() / 2,
                                  d1.testing.end());
    agent.replay(rest);
    service.drain();
    service.heartbeat_advance(24L * 3600 * 1000);
    service.drain();
    for (const auto& a : service.anomalies().all()) {
      if (!a.event_id.empty()) detected.insert(a.event_id);
    }
  }
  std::remove(path.c_str());

  // Union of pre-crash and post-restore detections covers the ground truth
  // with no false positives — nothing was lost at the crash boundary.
  EXPECT_EQ(detected, d1.anomalous_event_ids);
}

TEST(ServiceCheckpoint, RestoreErrors) {
  LogLensService service;
  EXPECT_FALSE(service.restore("/nonexistent/ckpt.json").ok());
  std::string path = temp_path("loglens_bad_ckpt.json");
  {
    std::ofstream out(path);
    out << "{not json";
  }
  EXPECT_FALSE(service.restore(path).ok());
  {
    std::ofstream out(path);
    out << "{\"model_name\":\"x\"}";
  }
  EXPECT_FALSE(service.restore(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace loglens
