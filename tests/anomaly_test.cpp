#include "storage/anomaly.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "storage/stores.h"

namespace loglens {
namespace {

Anomaly sample() {
  Anomaly a;
  a.type = AnomalyType::kMissingEndState;
  a.severity = "high";
  a.reason = "event expired without end";
  a.timestamp_ms = 1456218031000;
  a.source = "D1";
  a.event_id = "ev-abc";
  a.automaton_id = 2;
  a.logs = {"line one", "line two"};
  return a;
}

TEST(AnomalyTypeNames, RoundTripAll) {
  for (AnomalyType t :
       {AnomalyType::kUnparsedLog, AnomalyType::kMissingBeginState,
        AnomalyType::kMissingEndState, AnomalyType::kMissingIntermediateState,
        AnomalyType::kOccurrenceViolation, AnomalyType::kDurationViolation,
        AnomalyType::kUnknownTransition}) {
    AnomalyType back;
    ASSERT_TRUE(anomaly_type_from_name(anomaly_type_name(t), back));
    EXPECT_EQ(back, t);
  }
  AnomalyType out;
  EXPECT_FALSE(anomaly_type_from_name("NOPE", out));
}

TEST(AnomalySerde, JsonRoundTrip) {
  Anomaly a = sample();
  auto back = Anomaly::from_json(a.to_json());
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back.value(), a);
}

TEST(AnomalySerde, TextRoundTrip) {
  Anomaly a = sample();
  auto j = Json::parse(a.to_json().dump());
  ASSERT_TRUE(j.ok());
  auto back = Anomaly::from_json(j.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), a);
}

TEST(AnomalySerde, HumanReadableTimestampIncluded) {
  Json j = sample().to_json();
  EXPECT_EQ(j.get_string("timestamp"), "2016/02/23 09:00:31.000");
  // Negative timestamps (unknown) omit the rendered form.
  Anomaly a = sample();
  a.timestamp_ms = -1;
  EXPECT_EQ(a.to_json().find("timestamp"), nullptr);
}

TEST(AnomalySerde, RejectsGarbage) {
  EXPECT_FALSE(Anomaly::from_json(Json("str")).ok());
  Json bad{JsonObject{{"type", Json("NOT_A_TYPE")}}};
  EXPECT_FALSE(Anomaly::from_json(bad).ok());
}

TEST(AnomalySerde, DetailsRoundTrip) {
  Anomaly a = sample();
  a.details = Json(JsonObject{{"pattern_id", Json(4)},
                              {"count", Json(9)},
                              {"nested", Json(JsonArray{Json(1), Json("x")})}});
  auto text = a.to_json().dump();
  auto parsed = Json::parse(text);
  ASSERT_TRUE(parsed.ok());
  auto back = Anomaly::from_json(parsed.value());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), a);
  EXPECT_EQ(back->details.get_int("count"), 9);
  // Anomalies serialized before the details field existed still load.
  Json legacy = sample().to_json();
  legacy.as_object().erase(
      std::remove_if(legacy.as_object().begin(), legacy.as_object().end(),
                     [](const auto& kv) { return kv.first == "details"; }),
      legacy.as_object().end());
  auto old = Anomaly::from_json(legacy);
  ASSERT_TRUE(old.ok());
  EXPECT_TRUE(old->details.is_object());
}

TEST(AnomalyStoreTest, AddAndQueryByType) {
  AnomalyStore store;
  store.add(sample());
  Anomaly other = sample();
  other.type = AnomalyType::kUnparsedLog;
  store.add(other);
  store.add(other);
  EXPECT_EQ(store.count(), 3u);
  EXPECT_EQ(store.count_by_type(AnomalyType::kUnparsedLog), 2u);
  EXPECT_EQ(store.count_by_type(AnomalyType::kMissingEndState), 1u);
  EXPECT_EQ(store.count_by_type(AnomalyType::kDurationViolation), 0u);
  auto all = store.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].type, AnomalyType::kMissingEndState);
  auto by = store.by_type(AnomalyType::kUnparsedLog);
  ASSERT_EQ(by.size(), 2u);
  EXPECT_EQ(by[0].type, AnomalyType::kUnparsedLog);
}

}  // namespace
}  // namespace loglens
