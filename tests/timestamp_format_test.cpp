#include "timestamp/format.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

std::vector<std::string_view> views(std::initializer_list<const char*> toks) {
  return std::vector<std::string_view>(toks.begin(), toks.end());
}

TEST(FormatCompile, RejectsBadYearWidth) {
  EXPECT_FALSE(TimestampFormat::compile("yyy/MM/dd").ok());
  EXPECT_FALSE(TimestampFormat::compile("").ok());
  EXPECT_TRUE(TimestampFormat::compile("yyyy/MM/dd HH:mm:ss.SSS").ok());
}

TEST(FormatMatch, CanonicalForm) {
  auto f = TimestampFormat::compile("yyyy/MM/dd HH:mm:ss.SSS");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->token_span(), 2u);
  auto t = f->match(views({"2016/02/23", "09:00:31.123"}), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->year, 2016);
  EXPECT_EQ(t->month, 2);
  EXPECT_EQ(t->day, 23);
  EXPECT_EQ(t->hour, 9);
  EXPECT_EQ(t->minute, 0);
  EXPECT_EQ(t->second, 31);
  EXPECT_EQ(t->millis, 123);
}

TEST(FormatMatch, RejectsInvalidCalendarDates) {
  auto f = TimestampFormat::compile("yyyy/MM/dd HH:mm:ss");
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->match(views({"2017/02/29", "09:00:31"}), 0).has_value());
  EXPECT_FALSE(f->match(views({"2016/13/01", "09:00:31"}), 0).has_value());
  EXPECT_FALSE(f->match(views({"2016/00/10", "09:00:31"}), 0).has_value());
  EXPECT_TRUE(f->match(views({"2016/02/29", "09:00:31"}), 0).has_value());
}

TEST(FormatMatch, MonthNames) {
  auto f = TimestampFormat::compile("MMM d, yyyy HH:mm:ss");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->token_span(), 4u);
  auto t = f->match(views({"Feb", "23,", "2016", "09:00:31"}), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->month, 2);
  EXPECT_EQ(t->day, 23);
  // Case-insensitive.
  EXPECT_TRUE(
      f->match(views({"feb", "23,", "2016", "09:00:31"}), 0).has_value());
  EXPECT_FALSE(
      f->match(views({"Xxx", "23,", "2016", "09:00:31"}), 0).has_value());
}

TEST(FormatMatch, FullMonthName) {
  auto f = TimestampFormat::compile("MMMM d yyyy HH:mm");
  ASSERT_TRUE(f.ok());
  auto t = f->match(views({"February", "3", "2016", "09:05"}), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->month, 2);
  EXPECT_EQ(t->day, 3);
}

TEST(FormatMatch, FlexibleDigitWidths) {
  auto f = TimestampFormat::compile("M/d HH:mm:ss");
  ASSERT_TRUE(f.ok());
  auto t = f->match(views({"2/3", "09:00:31"}), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->month, 2);
  EXPECT_EQ(t->day, 3);
  EXPECT_TRUE(f->match(views({"12/31", "09:00:31"}), 0).has_value());
}

TEST(FormatMatch, SingleTokenIso) {
  auto f = TimestampFormat::compile("yyyy-MM-ddTHH:mm:ss.SSS");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->token_span(), 1u);
  auto t = f->match(views({"2016-02-23T09:00:31.123"}), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->millis, 123);
  EXPECT_FALSE(f->match(views({"2016-02-23 09:00:31.123"}), 0).has_value());
}

TEST(FormatMatch, TwelveHourClock) {
  auto f = TimestampFormat::compile("MM/dd/yyyy hh:mm:ss a");
  ASSERT_TRUE(f.ok());
  auto am = f->match(views({"02/23/2016", "09:00:31", "AM"}), 0);
  ASSERT_TRUE(am.has_value());
  EXPECT_EQ(am->hour, 9);
  auto pm = f->match(views({"02/23/2016", "09:00:31", "pm"}), 0);
  ASSERT_TRUE(pm.has_value());
  EXPECT_EQ(pm->hour, 21);
  auto noon = f->match(views({"02/23/2016", "12:00:00", "PM"}), 0);
  ASSERT_TRUE(noon.has_value());
  EXPECT_EQ(noon->hour, 12);
  auto midnight = f->match(views({"02/23/2016", "12:00:00", "AM"}), 0);
  ASSERT_TRUE(midnight.has_value());
  EXPECT_EQ(midnight->hour, 0);
}

TEST(FormatMatch, WeekdayPrefix) {
  auto f = TimestampFormat::compile("EEE MMM d HH:mm:ss yyyy");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->match(views({"Tue", "Feb", "23", "09:00:31", "2016"}), 0)
                  .has_value());
  EXPECT_FALSE(f->match(views({"Xyz", "Feb", "23", "09:00:31", "2016"}), 0)
                   .has_value());
}

TEST(FormatMatch, DefaultsWithoutYearOrDate) {
  auto noyear = TimestampFormat::compile("MM/dd HH:mm:ss");
  ASSERT_TRUE(noyear.ok());
  auto t = noyear->match(views({"02/23", "09:00:31"}), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->year, 2000);
  auto timeonly = TimestampFormat::compile("HH:mm:ss");
  auto t2 = timeonly->match(views({"09:00:31"}), 0);
  ASSERT_TRUE(t2.has_value());
  EXPECT_EQ(t2->year, 2000);
  EXPECT_EQ(t2->month, 1);
  EXPECT_EQ(t2->day, 1);
}

TEST(FormatMatch, OffsetIntoTokenVector) {
  auto f = TimestampFormat::compile("yyyy/MM/dd HH:mm:ss");
  auto t = f->match(views({"junk", "2016/02/23", "09:00:31"}), 1);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->day, 23);
  // Not enough tokens remaining.
  EXPECT_FALSE(f->match(views({"junk", "2016/02/23"}), 1).has_value());
}

TEST(FormatMatch, RejectsTrailingGarbage) {
  auto f = TimestampFormat::compile("HH:mm:ss");
  EXPECT_FALSE(f->match(views({"09:00:31x"}), 0).has_value());
  EXPECT_FALSE(f->match(views({"09:00"}), 0).has_value());
}

TEST(Prefilter, LengthAndFirstChar) {
  auto f = TimestampFormat::compile("yyyy/MM/dd HH:mm:ss");
  ASSERT_TRUE(f.ok());
  EXPECT_TRUE(f->first_token_plausible("2016/02/23"));
  EXPECT_FALSE(f->first_token_plausible("x016/02/23"));   // starts alpha
  EXPECT_FALSE(f->first_token_plausible("2016/02/233"));  // too long
  EXPECT_FALSE(f->first_token_plausible("16/2/3"));       // too short? 8 vs [8,10]
  auto named = TimestampFormat::compile("MMM d HH:mm:ss");
  EXPECT_TRUE(named->first_token_plausible("Feb"));
  EXPECT_FALSE(named->first_token_plausible("2016"));
}

TEST(FormatMatch, CommaMillis) {
  auto f = TimestampFormat::compile("HH:mm:ss,SSS");
  auto t = f->match(views({"09:00:31,250"}), 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->millis, 250);
}

}  // namespace
}  // namespace loglens
