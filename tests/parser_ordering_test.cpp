// Properties of the candidate-group ordering (Section III-B step 2: groups
// are "sorted in the ascending order of datatype's generality and length")
// and of wildcard-heavy pattern matching.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "parser/log_parser.h"
#include "tokenize/preprocessor.h"

namespace loglens {
namespace {

class OrderingTest : public ::testing::Test {
 protected:
  OrderingTest() : pre_(std::move(Preprocessor::create({}).value())) {}

  GrokPattern pat(const char* text, int id) {
    auto p = GrokPattern::parse(text);
    EXPECT_TRUE(p.ok()) << text;
    p->assign_field_ids(id);
    return std::move(p.value());
  }

  Preprocessor pre_;
};

// Build random models of overlapping patterns; the indexed parser's chosen
// pattern must be minimal in generality among ALL patterns that match.
TEST_F(OrderingTest, ChosenPatternIsAlwaysMostSpecific) {
  Rng rng(99);
  const char* pieces[] = {"%{WORD:a}", "%{NUMBER:b}", "%{NOTSPACE:c}",
                          "%{ANYDATA:d}", "alpha", "beta"};
  for (int round = 0; round < 60; ++round) {
    // Random model of 2-6 random patterns (1-3 tokens each).
    std::vector<GrokPattern> model;
    int id = 1;
    size_t count = 2 + rng.below(5);
    for (size_t i = 0; i < count; ++i) {
      std::vector<std::string> toks;
      size_t len = 1 + rng.below(3);
      for (size_t t = 0; t < len; ++t) {
        toks.push_back(pieces[rng.below(6)]);
      }
      std::string text;
      for (size_t t = 0; t < toks.size(); ++t) {
        if (t > 0) text += " ";
        text += toks[t];
      }
      auto parsed = GrokPattern::parse(text);
      if (!parsed.ok()) continue;
      parsed->assign_field_ids(id++);
      model.push_back(std::move(parsed.value()));
    }
    if (model.empty()) continue;
    LogParser parser(model, pre_.classifier());

    const char* inputs[] = {"alpha", "beta", "42", "hello", "x9",
                            "alpha 42", "beta hello", "42 x9 alpha"};
    for (const char* in : inputs) {
      TokenizedLog log = pre_.process(in);
      auto outcome = parser.parse(log);
      if (!outcome.log.has_value()) continue;
      // Find the chosen pattern and verify minimality.
      int chosen_gen = -1;
      for (const auto& p : model) {
        if (p.id() == outcome.log->pattern_id) chosen_gen = p.generality_score();
      }
      ASSERT_GE(chosen_gen, 0);
      for (const auto& p : model) {
        if (p.match(log.tokens, pre_.classifier())) {
          EXPECT_LE(chosen_gen, p.generality_score())
              << "input '" << in << "' chose P" << outcome.log->pattern_id
              << " but P" << p.id() << " is more specific";
        }
      }
    }
  }
}

TEST_F(OrderingTest, MultipleWildcardsExtractLazily) {
  std::vector<GrokPattern> model;
  model.push_back(pat("%{ANYDATA:head} ERROR %{ANYDATA:mid} at %{ANYDATA:tail}", 1));
  LogParser parser(model, pre_.classifier());
  auto outcome = parser.parse(
      pre_.process("svc worker ERROR out of memory at handler line 42"));
  ASSERT_TRUE(outcome.log.has_value());
  const JsonObject& f = outcome.log->fields;
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0].second.as_string(), "svc worker");
  EXPECT_EQ(f[1].second.as_string(), "out of memory");
  EXPECT_EQ(f[2].second.as_string(), "handler line 42");
}

TEST_F(OrderingTest, WildcardAnchorAmbiguityResolvedConsistently) {
  // Two possible splits ("a AT b AT c"): lazy wildcards bind the first AT.
  std::vector<GrokPattern> model;
  model.push_back(pat("%{ANYDATA:x} AT %{ANYDATA:y}", 1));
  LogParser parser(model, pre_.classifier());
  auto outcome = parser.parse(pre_.process("a AT b AT c"));
  ASSERT_TRUE(outcome.log.has_value());
  EXPECT_EQ(outcome.log->fields[0].second.as_string(), "a");
  EXPECT_EQ(outcome.log->fields[1].second.as_string(), "b AT c");
}

TEST_F(OrderingTest, LongWildcardMatchScalesLinearly) {
  // A 4000-token log against a wildcard pattern must parse quickly and
  // correctly (guards against exponential backtracking in pattern match).
  std::vector<GrokPattern> model;
  model.push_back(pat("start %{ANYDATA:body} finish", 1));
  LogParser parser(model, pre_.classifier());
  std::string line = "start";
  for (int i = 0; i < 4000; ++i) line += " t" + std::to_string(i);
  line += " finish";
  auto outcome = parser.parse(pre_.process(line));
  ASSERT_TRUE(outcome.log.has_value());
}

TEST_F(OrderingTest, TiesBrokenByLengthThenInsertion) {
  // Same generality, different lengths: shorter wins. Same generality and
  // length: first in model order wins (deterministic).
  std::vector<GrokPattern> model;
  model.push_back(pat("%{WORD:a} %{WORD:b} %{WORD:c}", 1));
  model.push_back(pat("%{WORD:a} beta %{WORD:c}", 2));  // less general
  LogParser parser(model, pre_.classifier());
  auto outcome = parser.parse(pre_.process("alpha beta gamma"));
  ASSERT_TRUE(outcome.log.has_value());
  EXPECT_EQ(outcome.log->pattern_id, 2);
}

}  // namespace
}  // namespace loglens
