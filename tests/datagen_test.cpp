#include "datagen/datasets.h"

#include <gtest/gtest.h>

#include "datagen/event_gen.h"
#include "datagen/template_gen.h"
#include "tokenize/preprocessor.h"

namespace loglens {
namespace {

TEST(EventGen, Deterministic) {
  Dataset a = make_d1(0.02);
  Dataset b = make_d1(0.02);
  EXPECT_EQ(a.training, b.training);
  EXPECT_EQ(a.testing, b.testing);
  EXPECT_EQ(a.anomalous_event_ids, b.anomalous_event_ids);
}

TEST(EventGen, SeedChangesOutput) {
  Dataset a = make_d1(0.02, 1);
  Dataset b = make_d1(0.02, 2);
  EXPECT_NE(a.training, b.training);
}

TEST(EventGen, D1GroundTruthCounts) {
  Dataset d1 = make_d1(0.1);
  // 21 anomalous sequences, exactly 1 of which is a missing end (Fig. 4/5).
  EXPECT_EQ(d1.injected_anomalies(), 21u);
  EXPECT_EQ(d1.missing_end_event_ids.size(), 1u);
  // 13 in event type 1, 8 in type 2 (Table V).
  size_t type1 = 0, type2 = 0;
  for (const auto& [_, type] : d1.anomaly_event_types) {
    if (type == 1) ++type1;
    if (type == 2) ++type2;
  }
  EXPECT_EQ(type1, 13u);
  EXPECT_EQ(type2, 8u);
}

TEST(EventGen, D2GroundTruthCounts) {
  Dataset d2 = make_d2(0.1);
  EXPECT_EQ(d2.injected_anomalies(), 13u);
  EXPECT_EQ(d2.missing_end_event_ids.size(), 3u);
  size_t type3 = 0;
  for (const auto& [_, type] : d2.anomaly_event_types) {
    if (type == 3) ++type3;
  }
  EXPECT_EQ(type3, 4u);  // deleting automaton 3 removes 4 anomalies
}

TEST(EventGen, TrainingIsCleanAndSorted) {
  Dataset d1 = make_d1(0.05);
  EXPECT_FALSE(d1.training.empty());
  // Training lines are time-sorted (timestamps are the leading tokens).
  auto pre = std::move(Preprocessor::create({}).value());
  int64_t last = -1;
  for (size_t i = 0; i < d1.training.size(); i += 37) {
    int64_t ts = pre.process(d1.training[i]).timestamp_ms;
    ASSERT_GE(ts, 0) << d1.training[i];
    EXPECT_GE(ts, last);
    last = ts;
  }
}

TEST(EventGen, PaperScaleLogCounts) {
  // At scale 1.0, D1 should produce on the order of 16k logs per phase.
  Dataset d1 = make_d1(1.0);
  EXPECT_GT(d1.training.size(), 12000u);
  EXPECT_LT(d1.training.size(), 22000u);
  Dataset d2 = make_d2(0.25);
  EXPECT_GT(d2.training.size(), 3000u);
}

TEST(TemplateGen, TemplateCountsMatchSpec) {
  TemplateCorpusSpec spec;
  spec.flavor = "storage";
  spec.num_templates = 301;
  auto templates = make_templates(spec);
  EXPECT_EQ(templates.size(), 301u);
  // All templates distinct.
  std::set<std::string> unique(templates.begin(), templates.end());
  EXPECT_EQ(unique.size(), 301u);
}

TEST(TemplateGen, AllFlavorsProduceDistinctTemplates) {
  for (const char* flavor : {"storage", "openstack", "pcap", "network",
                             "sql"}) {
    TemplateCorpusSpec spec;
    spec.flavor = flavor;
    spec.num_templates = 200;
    auto templates = make_templates(spec);
    std::set<std::string> unique(templates.begin(), templates.end());
    EXPECT_EQ(unique.size(), 200u) << flavor;
  }
}

TEST(TemplateGen, EveryTemplateAppearsInTraining) {
  TemplateCorpusSpec spec;
  spec.flavor = "pcap";
  spec.num_templates = 50;
  spec.train_logs = 500;
  spec.test_logs = 100;
  Dataset ds = generate_template_corpus(spec, "T");
  EXPECT_EQ(ds.training.size(), 500u);
  EXPECT_EQ(ds.testing.size(), 100u);
}

TEST(Datasets, ByNameDispatch) {
  EXPECT_EQ(make_dataset("D1", 0.02).name, "D1");
  EXPECT_EQ(make_dataset("D5", 0.002).name, "D5");
  EXPECT_EQ(make_dataset("SS7", 0.001).name, "SS7");
  EXPECT_EQ(make_dataset("SQL", 0.01).name, "SQL");
}

TEST(Datasets, Ss7SpoofedDialoguesLackUpdateLocation) {
  Dataset ss7 = make_ss7(0.01);
  ASSERT_FALSE(ss7.anomalous_event_ids.empty());
  EXPECT_EQ(ss7.anomalous_event_ids, ss7.missing_end_event_ids);
  // No test line for a spoofed IMSI contains InvokeUpdateLocation.
  for (const auto& line : ss7.testing) {
    if (line.find("InvokeUpdateLocation") == std::string::npos) continue;
    for (const auto& imsi : ss7.anomalous_event_ids) {
      EXPECT_EQ(line.find(imsi), std::string::npos) << line;
    }
  }
}

TEST(Datasets, Ss7TrainingClean) {
  Dataset ss7 = make_ss7(0.002);
  // Each training dialogue has all three actions; count multiples of 3.
  EXPECT_EQ(ss7.training.size() % 3, 0u);
  size_t purge = 0, auth = 0, update = 0;
  for (const auto& line : ss7.training) {
    if (line.find("InvokePurgeMs") != std::string::npos) ++purge;
    if (line.find("InvokeSendAuthenticationInfo") != std::string::npos) ++auth;
    if (line.find("InvokeUpdateLocation") != std::string::npos) ++update;
  }
  EXPECT_EQ(purge, auth);
  EXPECT_EQ(auth, update);
}

TEST(Datasets, SqlTemplatesAreComplex) {
  Dataset sql = make_sql(0.01);
  // The case study's point: these lines are deep and GUID-ridden.
  size_t nested = 0;
  for (const auto& line : sql.training) {
    if (line.find("SELECT oID FROM") != std::string::npos) ++nested;
  }
  EXPECT_GT(nested, sql.training.size() / 4);
}

TEST(Datasets, ScaleControlsVolume) {
  Dataset small = make_d3(0.01);
  Dataset tiny = make_d3(0.002);
  EXPECT_GT(small.training.size(), tiny.training.size());
  // Template floor: even tiny scales include every template three times.
  EXPECT_GE(make_d3(0.0001).training.size(), 903u);
}

}  // namespace
}  // namespace loglens
