#include "grok/datatype.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

TEST(DatatypeNames, RoundTrip) {
  for (Datatype t : {Datatype::kWord, Datatype::kNumber, Datatype::kIp,
                     Datatype::kNotSpace, Datatype::kDateTime,
                     Datatype::kAnyData}) {
    Datatype back;
    ASSERT_TRUE(datatype_from_name(datatype_name(t), back));
    EXPECT_EQ(back, t);
  }
  Datatype out;
  EXPECT_FALSE(datatype_from_name("BOGUS", out));
}

TEST(Coverage, PaperExamples) {
  // isCovered("WORD", "NOTSPACE") is true; the reverse is false.
  EXPECT_TRUE(is_covered(Datatype::kWord, Datatype::kNotSpace));
  EXPECT_FALSE(is_covered(Datatype::kNotSpace, Datatype::kWord));
}

TEST(Coverage, LatticeShape) {
  for (Datatype t : {Datatype::kWord, Datatype::kNumber, Datatype::kIp,
                     Datatype::kNotSpace, Datatype::kDateTime,
                     Datatype::kAnyData}) {
    EXPECT_TRUE(is_covered(t, t));            // reflexive
    EXPECT_TRUE(is_covered(t, Datatype::kAnyData));  // top element
  }
  EXPECT_TRUE(is_covered(Datatype::kNumber, Datatype::kNotSpace));
  EXPECT_TRUE(is_covered(Datatype::kIp, Datatype::kNotSpace));
  // DATETIME contains a space, so it is NOT under NOTSPACE.
  EXPECT_FALSE(is_covered(Datatype::kDateTime, Datatype::kNotSpace));
  EXPECT_FALSE(is_covered(Datatype::kAnyData, Datatype::kNotSpace));
  EXPECT_FALSE(is_covered(Datatype::kWord, Datatype::kNumber));
  EXPECT_FALSE(is_covered(Datatype::kWord, Datatype::kIp));
}

TEST(Coverage, TransitivityProperty) {
  const Datatype all[] = {Datatype::kWord,     Datatype::kNumber,
                          Datatype::kIp,       Datatype::kNotSpace,
                          Datatype::kDateTime, Datatype::kAnyData};
  for (Datatype a : all) {
    for (Datatype b : all) {
      for (Datatype c : all) {
        if (is_covered(a, b) && is_covered(b, c)) {
          EXPECT_TRUE(is_covered(a, c))
              << datatype_name(a) << " <= " << datatype_name(b)
              << " <= " << datatype_name(c);
        }
      }
    }
  }
}

TEST(Generality, OrderedByCoverage) {
  // If a is strictly covered by b, a must be strictly less general.
  const Datatype all[] = {Datatype::kWord,     Datatype::kNumber,
                          Datatype::kIp,       Datatype::kNotSpace,
                          Datatype::kDateTime, Datatype::kAnyData};
  for (Datatype a : all) {
    for (Datatype b : all) {
      if (a != b && is_covered(a, b)) {
        EXPECT_LT(generality(a), generality(b));
      }
    }
  }
}

TEST(Classifier, TableOneRules) {
  DatatypeClassifier c;
  EXPECT_EQ(c.classify("Connect"), Datatype::kWord);
  EXPECT_EQ(c.classify("abc"), Datatype::kWord);
  EXPECT_EQ(c.classify("42"), Datatype::kNumber);
  EXPECT_EQ(c.classify("-3.5"), Datatype::kNumber);
  EXPECT_EQ(c.classify("127.0.0.1"), Datatype::kIp);
  EXPECT_EQ(c.classify("user1"), Datatype::kNotSpace);
  EXPECT_EQ(c.classify("abc123"), Datatype::kNotSpace);
  EXPECT_EQ(c.classify("a-b"), Datatype::kNotSpace);
}

TEST(Classifier, MostSpecificWins) {
  DatatypeClassifier c;
  // "123" is both NUMBER and NOTSPACE; NUMBER is more specific.
  EXPECT_EQ(c.classify("123"), Datatype::kNumber);
  // An IP is also NOTSPACE but not NUMBER or WORD.
  EXPECT_EQ(c.classify("10.0.0.1"), Datatype::kIp);
}

TEST(Classifier, MatchesRespectsCoverage) {
  DatatypeClassifier c;
  EXPECT_TRUE(c.matches("hello", Datatype::kWord));
  EXPECT_TRUE(c.matches("hello", Datatype::kNotSpace));
  EXPECT_TRUE(c.matches("hello", Datatype::kAnyData));
  EXPECT_FALSE(c.matches("hello", Datatype::kNumber));
  EXPECT_FALSE(c.matches("two words", Datatype::kNotSpace));
  EXPECT_TRUE(c.matches("2016/02/23 09:00:31.000", Datatype::kDateTime));
  EXPECT_FALSE(c.matches("hello", Datatype::kDateTime));
}

}  // namespace
}  // namespace loglens
