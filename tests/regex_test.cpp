#include "regexlite/regex.h"

#include <gtest/gtest.h>

namespace loglens {
namespace {

TEST(RegexCompile, RejectsBadSyntax) {
  EXPECT_FALSE(Regex::compile("(unclosed").ok());
  EXPECT_FALSE(Regex::compile("[unclosed").ok());
  EXPECT_FALSE(Regex::compile("*dangling").ok());
  EXPECT_FALSE(Regex::compile("a\\").ok());
  EXPECT_FALSE(Regex::compile("a)b").ok());
}

TEST(RegexFullMatch, Literals) {
  Regex re = Regex::compile_or_die("abc");
  EXPECT_TRUE(re.full_match("abc"));
  EXPECT_FALSE(re.full_match("abcd"));
  EXPECT_FALSE(re.full_match("ab"));
  EXPECT_FALSE(re.full_match(""));
}

TEST(RegexFullMatch, Classes) {
  Regex re = Regex::compile_or_die("[a-z0-9_]+");
  EXPECT_TRUE(re.full_match("hello_42"));
  EXPECT_FALSE(re.full_match("Hello"));
  Regex neg = Regex::compile_or_die("[^0-9]+");
  EXPECT_TRUE(neg.full_match("abc!"));
  EXPECT_FALSE(neg.full_match("a1"));
}

TEST(RegexFullMatch, ClassEdgeCases) {
  // ']' first in class is a literal; '-' at the end is a literal.
  EXPECT_TRUE(Regex::compile_or_die("[]a]+").full_match("]a"));
  EXPECT_TRUE(Regex::compile_or_die("[a-]+").full_match("a-"));
  EXPECT_TRUE(Regex::compile_or_die("[\\d\\s]+").full_match("1 2"));
}

TEST(RegexFullMatch, PredefinedEscapes) {
  EXPECT_TRUE(Regex::compile_or_die("\\d+").full_match("0123"));
  EXPECT_FALSE(Regex::compile_or_die("\\d+").full_match("12a"));
  EXPECT_TRUE(Regex::compile_or_die("\\w+").full_match("a_1Z"));
  EXPECT_TRUE(Regex::compile_or_die("\\S+").full_match("no-space!"));
  EXPECT_FALSE(Regex::compile_or_die("\\S+").full_match("has space"));
  EXPECT_TRUE(Regex::compile_or_die("\\D+").full_match("ab!"));
  EXPECT_FALSE(Regex::compile_or_die("\\D+").full_match("a1"));
}

TEST(RegexFullMatch, Quantifiers) {
  EXPECT_TRUE(Regex::compile_or_die("a*").full_match(""));
  EXPECT_TRUE(Regex::compile_or_die("a*").full_match("aaaa"));
  EXPECT_FALSE(Regex::compile_or_die("a+").full_match(""));
  EXPECT_TRUE(Regex::compile_or_die("a?b").full_match("b"));
  EXPECT_TRUE(Regex::compile_or_die("a?b").full_match("ab"));
}

TEST(RegexFullMatch, BoundedQuantifiers) {
  Regex re = Regex::compile_or_die("[0-9]{1,3}");
  EXPECT_TRUE(re.full_match("1"));
  EXPECT_TRUE(re.full_match("123"));
  EXPECT_FALSE(re.full_match("1234"));
  EXPECT_FALSE(re.full_match(""));
  Regex exact = Regex::compile_or_die("a{3}");
  EXPECT_TRUE(exact.full_match("aaa"));
  EXPECT_FALSE(exact.full_match("aa"));
  EXPECT_FALSE(exact.full_match("aaaa"));
  Regex open = Regex::compile_or_die("a{2,}");
  EXPECT_FALSE(open.full_match("a"));
  EXPECT_TRUE(open.full_match("aaaaa"));
}

TEST(RegexFullMatch, InvalidBracesAreLiteral) {
  EXPECT_TRUE(Regex::compile_or_die("a{x}").full_match("a{x}"));
  EXPECT_TRUE(Regex::compile_or_die("{").full_match("{"));
}

TEST(RegexFullMatch, Alternation) {
  Regex re = Regex::compile_or_die("cat|dog|bird");
  EXPECT_TRUE(re.full_match("cat"));
  EXPECT_TRUE(re.full_match("bird"));
  EXPECT_FALSE(re.full_match("catdog"));
  Regex grouped = Regex::compile_or_die("a(b|c)d");
  EXPECT_TRUE(grouped.full_match("abd"));
  EXPECT_TRUE(grouped.full_match("acd"));
  EXPECT_FALSE(grouped.full_match("ad"));
}

TEST(RegexFullMatch, TableOneIpPattern) {
  Regex re = Regex::compile_or_die(
      "[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}\\.[0-9]{1,3}");
  EXPECT_TRUE(re.full_match("127.0.0.1"));
  EXPECT_TRUE(re.full_match("10.255.1.2"));
  EXPECT_FALSE(re.full_match("1.2.3"));
  EXPECT_FALSE(re.full_match("a.b.c.d"));
}

TEST(RegexFullMatch, TableOneNumberPattern) {
  Regex re = Regex::compile_or_die("-?[0-9]+(\\.[0-9]+)?");
  EXPECT_TRUE(re.full_match("42"));
  EXPECT_TRUE(re.full_match("-42"));
  EXPECT_TRUE(re.full_match("3.14"));
  EXPECT_FALSE(re.full_match("3."));
  EXPECT_FALSE(re.full_match("."));
}

TEST(RegexSearch, FindsLeftmost) {
  Regex re = Regex::compile_or_die("[0-9]+");
  RegexMatch m;
  ASSERT_TRUE(re.search("abc 123 def 456", m));
  EXPECT_EQ(m.begin, 4u);
  EXPECT_EQ(m.end, 7u);
  EXPECT_FALSE(re.search("no digits here", m));
}

TEST(RegexSearch, Anchors) {
  Regex re = Regex::compile_or_die("^abc");
  EXPECT_TRUE(re.search("abcdef"));
  EXPECT_FALSE(re.search("xabc"));
  Regex end = Regex::compile_or_die("def$");
  EXPECT_TRUE(end.search("abcdef"));
  EXPECT_FALSE(end.search("defabc"));
}

TEST(RegexCaptures, GroupsExtracted) {
  Regex re = Regex::compile_or_die("([a-z]+)=([0-9]+)");
  RegexMatch m;
  ASSERT_TRUE(re.full_match("size=42", m));
  ASSERT_EQ(m.groups.size(), 2u);
  EXPECT_EQ(m.group_text("size=42", 0), "size");
  EXPECT_EQ(m.group_text("size=42", 1), "42");
}

TEST(RegexCaptures, NonCapturingGroups) {
  Regex re = Regex::compile_or_die("(?:ab)+(c)");
  RegexMatch m;
  ASSERT_TRUE(re.full_match("ababc", m));
  ASSERT_EQ(m.groups.size(), 1u);
  EXPECT_EQ(m.group_text("ababc", 0), "c");
}

TEST(RegexCaptures, UnmatchedOptionalGroup) {
  Regex re = Regex::compile_or_die("a(b)?c");
  RegexMatch m;
  ASSERT_TRUE(re.full_match("ac", m));
  EXPECT_EQ(m.group_text("ac", 0), "");
}

TEST(RegexLazy, LazyVsGreedy) {
  Regex greedy = Regex::compile_or_die("\"(.*)\"");
  Regex lazy = Regex::compile_or_die("\"(.*?)\"");
  std::string s = "\"a\" and \"b\"";
  RegexMatch m;
  ASSERT_TRUE(greedy.search(s, m));
  EXPECT_EQ(m.group_text(s, 0), "a\" and \"b");
  ASSERT_TRUE(lazy.search(s, m));
  EXPECT_EQ(m.group_text(s, 0), "a");
}

TEST(RegexReplace, ReplaceAllWithGroups) {
  Regex re = Regex::compile_or_die("([0-9]+)KB");
  EXPECT_EQ(re.replace_all("read 123KB wrote 45KB", "$1 KB"),
            "read 123 KB wrote 45 KB");
  EXPECT_EQ(re.replace_all("no match", "$1 KB"), "no match");
  Regex dollar = Regex::compile_or_die("x");
  EXPECT_EQ(dollar.replace_all("x", "$$"), "$");
  EXPECT_EQ(dollar.replace_all("axb", "[$0]"), "a[x]b");
}

TEST(RegexDot, DoesNotCrossNewline) {
  Regex re = Regex::compile_or_die("a.b");
  EXPECT_TRUE(re.full_match("axb"));
  EXPECT_FALSE(re.full_match("a\nb"));
}

TEST(RegexBudget, PathologicalPatternTerminates) {
  // Classic catastrophic backtracking shape; the step budget turns it into
  // a no-match instead of a hang.
  Regex re = Regex::compile_or_die("(a+)+$");
  re.set_step_budget(10000);
  std::string adversarial(64, 'a');
  adversarial.push_back('b');
  EXPECT_FALSE(re.full_match(adversarial));
}

TEST(RegexBudget, ExhaustionIsSurfacedNotSilent) {
  Regex re = Regex::compile_or_die("(a+)+$");
  re.set_step_budget(10000);
  std::string adversarial(64, 'a');
  adversarial.push_back('b');
  EXPECT_EQ(re.budget_exhausted_count(), 0u);
  RegexMatch m;
  EXPECT_FALSE(re.full_match(adversarial, m));
  EXPECT_TRUE(m.budget_exhausted);
  EXPECT_EQ(re.budget_exhausted_count(), 1u);
  // The boolean-only overload still counts.
  EXPECT_FALSE(re.full_match(adversarial));
  EXPECT_EQ(re.budget_exhausted_count(), 2u);
}

TEST(RegexBudget, GenuineNoMatchDoesNotFlagExhaustion) {
  Regex re = Regex::compile_or_die("[0-9]+");
  RegexMatch m;
  EXPECT_FALSE(re.full_match("abc", m));
  EXPECT_FALSE(m.budget_exhausted);
  EXPECT_EQ(re.budget_exhausted_count(), 0u);
  // A later successful match clears any stale flag on the reused struct.
  m.budget_exhausted = true;
  EXPECT_TRUE(re.full_match("123", m));
  EXPECT_FALSE(m.budget_exhausted);
}

TEST(RegexBudget, StickyAcrossSearchRestarts) {
  // search() retries every start position. Early starts (long 'a' runs)
  // exhaust the budget; the final starts (at 'b' and end-of-string) fail
  // cleanly within it. The flag must survive those clean failures — the
  // caller is looking at "unknown", not a proven no-match.
  Regex re = Regex::compile_or_die("(a+)+$");
  re.set_step_budget(10000);
  std::string adversarial(64, 'a');
  adversarial.push_back('b');
  RegexMatch m;
  EXPECT_FALSE(re.search(adversarial, m));
  EXPECT_TRUE(m.budget_exhausted);
  EXPECT_GT(re.budget_exhausted_count(), 0u);
  // A following clean search on the same struct resets the flag.
  EXPECT_FALSE(re.search("zzz", m));
  EXPECT_FALSE(m.budget_exhausted);
}

TEST(RegexReplace, StartAnchorDoesNotRematchAfterReplacement) {
  // '^a' matches only at offset 0 of the original text. The old scan
  // matched against text.substr(pos), so '^' re-anchored at every
  // post-replacement remainder and rewrote all three 'a's.
  Regex re = Regex::compile_or_die("^a");
  EXPECT_EQ(re.replace_all("aaa", "X"), "Xaa");
  Regex word = Regex::compile_or_die("^[a-z]+");
  EXPECT_EQ(word.replace_all("abc abc", "_"), "_ abc");
}

TEST(RegexReplace, EndAnchorMatchesTrueEndOnly) {
  Regex re = Regex::compile_or_die("a$");
  EXPECT_EQ(re.replace_all("aaa", "X"), "aaX");
  Regex both = Regex::compile_or_die("^a$");
  EXPECT_EQ(both.replace_all("aaa", "X"), "aaa");
  EXPECT_EQ(both.replace_all("a", "X"), "X");
}

TEST(RegexReplace, BudgetExhaustionIsPropagatedNotSilent) {
  Regex re = Regex::compile_or_die("(a+)+b$");
  re.set_step_budget(10000);
  std::string adversarial(64, 'a');
  adversarial.push_back('c');
  bool exhausted = false;
  // The scan gives up on budget: nothing is replaced, and the caller is
  // told the result is truncation, not a proven no-match.
  EXPECT_EQ(re.replace_all(adversarial, "X", &exhausted), adversarial);
  EXPECT_TRUE(exhausted);
  EXPECT_GT(re.budget_exhausted_count(), 0u);
  // A clean replace reports no exhaustion through the same out-param.
  Regex simple = Regex::compile_or_die("b");
  EXPECT_EQ(simple.replace_all("abc", "X", &exhausted), "aXc");
  EXPECT_FALSE(exhausted);
}

TEST(RegexCompileOrDie, AbortsWithDiagnosticOnBadPattern) {
  EXPECT_DEATH(Regex::compile_or_die("(unclosed"), "compile_or_die");
}

TEST(RegexStats, CompiledBytesNonZero) {
  Regex re = Regex::compile_or_die("[a-z]+ [0-9]{1,3}");
  EXPECT_GT(re.compiled_bytes(), re.pattern().size());
}

// Property sweep: every (pattern, input, expected) triple.
struct Case {
  const char* pattern;
  const char* input;
  bool match;
};

class FullMatchSweep : public ::testing::TestWithParam<Case> {};

TEST_P(FullMatchSweep, Matches) {
  const Case& c = GetParam();
  Regex re = Regex::compile_or_die(c.pattern);
  EXPECT_EQ(re.full_match(c.input), c.match)
      << c.pattern << " vs " << c.input;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FullMatchSweep,
    ::testing::Values(
        Case{"a|", "", true}, Case{"a|", "a", true},
        Case{"(ab)*", "ababab", true}, Case{"(ab)*", "aba", false},
        Case{"a{0,2}b", "b", true}, Case{"a{0,2}b", "aab", true},
        Case{"a{0,2}b", "aaab", false},
        Case{"x(y|z){2}w", "xyzw", true}, Case{"x(y|z){2}w", "xyw", false},
        Case{"\\.", ".", true}, Case{"\\.", "a", false},
        Case{".*", "anything at all", true},
        Case{"[A-Za-z]+[0-9]*", "abc123", true},
        Case{"[A-Za-z]+[0-9]*", "123", false}));

}  // namespace
}  // namespace loglens
