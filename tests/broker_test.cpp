#include "broker/broker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace loglens {
namespace {

Message msg(const char* key, const char* value, int64_t ts = -1,
            const char* tag = kTagData) {
  Message m;
  m.key = key;
  m.value = value;
  m.timestamp_ms = ts;
  m.tag = tag;
  return m;
}

TEST(Broker, TopicCreation) {
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", 3).ok());
  EXPECT_EQ(broker.partition_count("t"), 3u);
  EXPECT_TRUE(broker.create_topic("t", 3).ok());   // idempotent
  EXPECT_FALSE(broker.create_topic("t", 4).ok());  // mismatch
  EXPECT_FALSE(broker.create_topic("z", 0).ok());
  EXPECT_EQ(broker.partition_count("missing"), 0u);
}

TEST(Broker, AutoCreatesOnProduce) {
  Broker broker;
  ASSERT_TRUE(broker.produce("auto", msg("k", "v")).ok());
  EXPECT_EQ(broker.partition_count("auto"), 1u);
  EXPECT_EQ(broker.end_offset("auto", 0), 1u);
}

TEST(Broker, PartitionOrderPreserved) {
  Broker broker;
  broker.create_topic("t", 1);
  for (int i = 0; i < 10; ++i) {
    broker.produce("t", msg("k", std::to_string(i).c_str()));
  }
  auto fetched = broker.fetch("t", 0, 0, 100);
  ASSERT_EQ(fetched.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fetched[i].value, std::to_string(i));
  }
}

TEST(Broker, KeyHashingIsStable) {
  Broker broker;
  broker.create_topic("t", 4);
  for (int i = 0; i < 20; ++i) broker.produce("t", msg("same-key", "v"));
  // All messages with one key land in one partition.
  size_t nonempty = 0;
  for (size_t p = 0; p < 4; ++p) {
    if (broker.end_offset("t", p) > 0) ++nonempty;
  }
  EXPECT_EQ(nonempty, 1u);
}

TEST(Broker, ExplicitPartitionAndBounds) {
  Broker broker;
  broker.create_topic("t", 2);
  ASSERT_TRUE(broker.produce("t", msg("k", "v"), 1).ok());
  EXPECT_FALSE(broker.produce("t", msg("k", "v"), 7).ok());
  EXPECT_EQ(broker.end_offset("t", 1), 1u);
  EXPECT_EQ(broker.end_offset("t", 0), 0u);
}

TEST(Broker, FetchOffsetsAndLimits) {
  Broker broker;
  broker.create_topic("t", 1);
  for (int i = 0; i < 5; ++i) {
    broker.produce("t", msg("k", std::to_string(i).c_str()));
  }
  EXPECT_EQ(broker.fetch("t", 0, 3, 100).size(), 2u);
  EXPECT_EQ(broker.fetch("t", 0, 0, 2).size(), 2u);
  EXPECT_TRUE(broker.fetch("t", 0, 5, 100).empty());
  EXPECT_TRUE(broker.fetch("t", 9, 0, 100).empty());   // bad partition
  EXPECT_TRUE(broker.fetch("no", 0, 0, 100).empty());  // bad topic
}

TEST(Broker, BlockingFetchTimesOut) {
  Broker broker;
  broker.create_topic("t", 1);
  auto start = std::chrono::steady_clock::now();
  auto out = broker.fetch_blocking("t", 0, 0, 10, 50);
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(out.empty());
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            40);
}

TEST(Broker, BlockingFetchWakesOnProduce) {
  Broker broker;
  broker.create_topic("t", 1);
  std::thread producer([&broker] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    broker.produce("t", msg("k", "wake"));
  });
  auto out = broker.fetch_blocking("t", 0, 0, 10, 2000);
  producer.join();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, "wake");
}

TEST(Consumer, PollAdvancesOffsets) {
  Broker broker;
  broker.create_topic("t", 2);
  for (int i = 0; i < 6; ++i) {
    broker.produce("t", msg(("k" + std::to_string(i)).c_str(), "v"));
  }
  Consumer consumer(broker, "t");
  size_t total = 0;
  while (true) {
    auto batch = consumer.poll(2);
    if (batch.empty()) break;
    total += batch.size();
  }
  EXPECT_EQ(total, 6u);
  EXPECT_EQ(consumer.consumed(), 6u);
  EXPECT_TRUE(consumer.caught_up());
  broker.produce("t", msg("k", "late"));
  EXPECT_FALSE(consumer.caught_up());
  EXPECT_EQ(consumer.poll(10).size(), 1u);
}

TEST(Consumer, IndependentConsumersSeeAllMessages) {
  Broker broker;
  broker.create_topic("t", 1);
  broker.produce("t", msg("k", "v1"));
  Consumer a(broker, "t");
  Consumer b(broker, "t");
  EXPECT_EQ(a.poll(10).size(), 1u);
  EXPECT_EQ(b.poll(10).size(), 1u);  // offsets are per consumer
}

TEST(Consumer, CreatedBeforeTopicGrowsWithIt) {
  Broker broker;
  Consumer consumer(broker, "later");
  EXPECT_TRUE(consumer.poll(10).empty());
  broker.produce("later", msg("k", "v"));
  EXPECT_EQ(consumer.poll(10).size(), 1u);
}

TEST(ConsumerGroupTest, PartitionsSplitAcrossMembers) {
  Broker broker;
  broker.create_topic("t", 6);
  ConsumerGroup group(broker, "g", "t");
  size_t m0 = group.join();
  size_t m1 = group.join();
  EXPECT_EQ(group.members(), 2u);
  auto a0 = group.assignment(m0);
  auto a1 = group.assignment(m1);
  EXPECT_EQ(a0.size() + a1.size(), 6u);
  // Disjoint coverage of all partitions.
  std::set<size_t> all(a0.begin(), a0.end());
  for (size_t p : a1) {
    EXPECT_TRUE(all.insert(p).second) << "partition " << p << " shared";
  }
  EXPECT_EQ(all.size(), 6u);
}

TEST(ConsumerGroupTest, EveryMessageConsumedExactlyOnce) {
  Broker broker;
  broker.create_topic("t", 4);
  for (int i = 0; i < 40; ++i) {
    broker.produce("t", msg(("k" + std::to_string(i)).c_str(),
                            std::to_string(i).c_str()));
  }
  ConsumerGroup group(broker, "g", "t");
  size_t m0 = group.join();
  size_t m1 = group.join();
  size_t m2 = group.join();
  std::multiset<std::string> seen;
  for (size_t member : {m0, m1, m2}) {
    for (auto batch = group.poll(member, 7); !batch.empty();
         batch = group.poll(member, 7)) {
      for (const auto& m : batch) seen.insert(m.value);
    }
  }
  EXPECT_EQ(seen.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(seen.count(std::to_string(i)), 1u) << i;
  }
}

TEST(ConsumerGroupTest, SingleMemberOwnsEverything) {
  Broker broker;
  broker.create_topic("t", 3);
  broker.produce("t", msg("a", "1"));
  broker.produce("t", msg("b", "2"));
  ConsumerGroup group(broker, "g", "t");
  size_t m = group.join();
  EXPECT_EQ(group.assignment(m).size(), 3u);
  EXPECT_EQ(group.poll(m, 100).size(), 2u);
  EXPECT_TRUE(group.poll(m, 100).empty());  // offsets advanced
}

TEST(Broker, ConcurrentProducersAreSerialized) {
  Broker broker;
  broker.create_topic("t", 1);
  constexpr int kThreads = 4;
  constexpr int kEach = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&broker, t] {
      for (int i = 0; i < kEach; ++i) {
        broker.produce("t", msg("k", (std::to_string(t) + ":" +
                                      std::to_string(i)).c_str()));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(broker.end_offset("t", 0), kThreads * kEach);
  // Per-producer order is preserved within the partition.
  auto all = broker.fetch("t", 0, 0, kThreads * kEach);
  std::vector<int> last(kThreads, -1);
  for (const auto& m : all) {
    int tid = m.value[0] - '0';
    int seq = std::stoi(m.value.substr(2));
    EXPECT_GT(seq, last[tid]);
    last[tid] = seq;
  }
}

TEST(Broker, StampsSequenceNumbersOnFirstProduce) {
  Broker broker;
  broker.create_topic("t", 2);
  broker.produce("t", msg("k", "a"), 0);
  broker.produce("t", msg("k", "b"), 0);
  broker.produce("t", msg("k", "c"), 1);
  auto p0 = broker.fetch("t", 0, 0, 10);
  auto p1 = broker.fetch("t", 1, 0, 10);
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_EQ(p0[0].seq, 0);
  EXPECT_EQ(p0[1].seq, 1);
  ASSERT_EQ(p1.size(), 1u);
  EXPECT_EQ(p1[0].seq, 0);
  // An already-stamped seq (a derived child identity) is preserved.
  Message stamped = msg("k", "d");
  stamped.seq = 1234;
  broker.produce("t", std::move(stamped), 1);
  EXPECT_EQ(broker.fetch("t", 1, 1, 1).at(0).seq, 1234);
}

TEST(Consumer, RedeliveryAfterCrashReplaysFromCommittedOffsets) {
  // Offset semantics under a consumer crash: a replacement consumer that
  // seeks to the last *committed* offsets re-reads exactly the uncommitted
  // suffix — every message at or past the commit point is redelivered, and
  // nothing before it.
  Broker broker;
  broker.create_topic("t", 2);
  for (int i = 0; i < 10; ++i) {
    broker.produce("t", msg("k", std::to_string(i).c_str()), i % 2);
  }

  Consumer consumer(broker, "t");
  // Consume part of the stream, then "commit" by snapshotting offsets.
  auto first = consumer.poll(6);
  ASSERT_EQ(first.size(), 6u);
  std::vector<uint64_t> committed = consumer.offsets();

  // More consumption happens after the commit and is then lost in a crash.
  auto uncommitted = consumer.poll(2);
  ASSERT_EQ(uncommitted.size(), 2u);

  // The replacement consumer resumes from the committed snapshot.
  Consumer replacement(broker, "t");
  replacement.seek(committed);
  EXPECT_EQ(replacement.offsets(), committed);
  auto replayed = replacement.poll(100);

  // Exactly the post-commit suffix comes back: the 2 uncommitted messages
  // are redelivered (at-least-once), plus the never-polled tail.
  std::multiset<std::string> expect_values;
  for (const auto& m : uncommitted) expect_values.insert(m.value);
  expect_values.insert("7");
  expect_values.insert("9");
  std::multiset<std::string> got_values;
  for (const auto& m : replayed) got_values.insert(m.value);
  EXPECT_EQ(got_values, expect_values);

  // Redelivered copies carry the same broker-stamped seq as the originals —
  // the identity downstream dedup keys on.
  std::multiset<int64_t> first_seqs, again_seqs;
  for (const auto& m : uncommitted) first_seqs.insert(m.seq);
  Consumer third(broker, "t");
  third.seek(committed);
  size_t matched = 0;
  for (const auto& m : third.poll(100)) {
    if (first_seqs.count(m.seq) != 0) ++matched;
  }
  EXPECT_EQ(matched, uncommitted.size());

  // After full consumption the replacement is caught up and a fresh poll
  // from the committed point is empty only once everything was read.
  EXPECT_TRUE(replacement.caught_up());
  EXPECT_TRUE(replacement.poll(100).empty());
}

TEST(Consumer, SeekGrowsOffsetVectorWhenNeeded) {
  Broker broker;
  broker.create_topic("t", 3);
  Consumer consumer(broker, "t");
  consumer.seek({1, 2, 3, 4});  // more entries than partitions: kept
  ASSERT_GE(consumer.offsets().size(), 4u);
  EXPECT_EQ(consumer.offsets()[3], 4u);
}

// Regression: Consumer's offset table used to be unsynchronized, so a
// monitor thread calling lag()/offsets()/caught_up() raced the driver
// thread's poll() — including a vector resize (partition growth) under the
// reader's feet. The consumer now guards the table; this test drives both
// sides hard enough for TSan (CI leg) to flag any regression.
TEST(Consumer, MonitoringIsSafeWhileDriverPolls) {
  Broker broker;
  // Created before the topic exists: the first polls run with a 1-slot
  // offset table, and the table resizes to 4 mid-run once the topic appears
  // — the exact window the old race lived in.
  Consumer consumer(broker, "t");

  std::atomic<bool> stop{false};
  uint64_t drained = 0;
  std::thread driver([&] {
    while (!stop.load()) {
      drained += consumer.poll(16).size();
    }
    drained += consumer.poll(SIZE_MAX).size();
  });
  std::thread monitor([&] {
    while (!stop.load()) {
      (void)consumer.lag();
      (void)consumer.offsets();
      (void)consumer.caught_up();
      (void)consumer.consumed();
    }
  });

  ASSERT_TRUE(broker.create_topic("t", 4).ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(broker.produce("t", msg("k", "v", -1), i % 4).ok());
  }
  stop.store(true);
  driver.join();
  monitor.join();
  EXPECT_EQ(drained, 2000u);
  EXPECT_EQ(consumer.consumed(), 2000u);
  EXPECT_TRUE(consumer.caught_up());
  EXPECT_EQ(consumer.lag(), 0u);
}

}  // namespace
}  // namespace loglens
