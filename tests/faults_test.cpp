// FaultInjector unit tests: deterministic per-site streams, trigger caps,
// delay behavior, and the metrics it reports through — plus the trace
// propagation contract under faults: retried tasks and redelivered messages
// must stay inside the trace that first touched them.
#include "faults/fault_injector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "broker/broker.h"
#include "common/clock.h"
#include "common/sched.h"
#include "streaming/engine.h"
#include "trace/trace.h"

namespace loglens {
namespace {

std::vector<FaultAction> draw(FaultInjector& f, const std::string& site,
                              int n) {
  std::vector<FaultAction> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(f.check(site));
  return out;
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  MetricsRegistry r1, r2;
  FaultInjector a(42, &r1);
  FaultInjector b(42, &r2);
  FaultSpec spec;
  spec.probability = 0.3;
  a.arm(kFaultSiteProduce, spec);
  b.arm(kFaultSiteProduce, spec);
  EXPECT_EQ(draw(a, kFaultSiteProduce, 200), draw(b, kFaultSiteProduce, 200));
  EXPECT_EQ(a.triggered(kFaultSiteProduce), b.triggered(kFaultSiteProduce));
  EXPECT_GT(a.triggered(kFaultSiteProduce), 0u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  MetricsRegistry r1, r2;
  FaultInjector a(1, &r1);
  FaultInjector b(2, &r2);
  FaultSpec spec;
  spec.probability = 0.5;
  a.arm(kFaultSiteFetch, spec);
  b.arm(kFaultSiteFetch, spec);
  EXPECT_NE(draw(a, kFaultSiteFetch, 200), draw(b, kFaultSiteFetch, 200));
}

TEST(FaultInjectorTest, SiteStreamsAreIndependent) {
  // Consulting one site must not perturb another site's decision stream:
  // run B alone, then re-run B with interleaved consults at A.
  MetricsRegistry r1, r2;
  FaultInjector lone(7, &r1);
  FaultSpec spec;
  spec.probability = 0.4;
  lone.arm(kFaultSiteTaskProcess, spec);
  auto expected = draw(lone, kFaultSiteTaskProcess, 100);

  FaultInjector noisy(7, &r2);
  noisy.arm(kFaultSiteTaskProcess, spec);
  noisy.arm(kFaultSiteTaskStart, spec);
  std::vector<FaultAction> got;
  for (int i = 0; i < 100; ++i) {
    noisy.check(kFaultSiteTaskStart);  // extra draws on a different site
    got.push_back(noisy.check(kFaultSiteTaskProcess));
  }
  EXPECT_EQ(got, expected);
}

TEST(FaultInjectorTest, MaxTriggersCapsFiring) {
  MetricsRegistry r;
  FaultInjector f(9, &r);
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_triggers = 3;
  f.arm(kFaultSiteProduce, spec);
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (f.check(kFaultSiteProduce) != FaultAction::kNone) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(f.triggered(kFaultSiteProduce), 3u);
  EXPECT_EQ(f.total_triggered(), 3u);
}

TEST(FaultInjectorTest, DisarmedSiteNeverFires) {
  MetricsRegistry r;
  FaultInjector f(5, &r);
  EXPECT_EQ(f.check(kFaultSiteCheckpointWrite), FaultAction::kNone);
  FaultSpec spec;
  f.arm(kFaultSiteCheckpointWrite, spec);
  EXPECT_EQ(f.check(kFaultSiteCheckpointWrite), FaultAction::kThrow);
  f.disarm(kFaultSiteCheckpointWrite);
  EXPECT_EQ(f.check(kFaultSiteCheckpointWrite), FaultAction::kNone);
  f.arm(kFaultSiteCheckpointWrite, spec);
  f.disarm_all();
  EXPECT_EQ(f.check(kFaultSiteCheckpointWrite), FaultAction::kNone);
  EXPECT_EQ(f.triggered(kFaultSiteCheckpointWrite), 1u);
}

TEST(FaultInjectorTest, HitThrowsFaultError) {
  MetricsRegistry r;
  FaultInjector f(3, &r);
  FaultSpec spec;
  spec.max_triggers = 1;
  f.arm(kFaultSiteTaskFinish, spec);
  EXPECT_THROW(f.hit(kFaultSiteTaskFinish), FaultError);
  EXPECT_NO_THROW(f.hit(kFaultSiteTaskFinish));  // cap spent
}

TEST(FaultInjectorTest, DelayStallsTheCall) {
  MetricsRegistry r;
  FaultInjector f(11, &r);
  FaultSpec spec;
  spec.action = FaultAction::kDelay;
  spec.delay_ms = 30;
  spec.max_triggers = 1;
  f.arm(kFaultSiteFetch, spec);
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(f.check(kFaultSiteFetch), FaultAction::kDelay);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 25);
  // A delay is survivable: hit() only throws for kThrow.
  EXPECT_NO_THROW(f.hit(kFaultSiteFetch));
}

// The delay fault is routed through the sched/clock shim: under
// ScopedVirtualDelays it advances the trace clock instead of sleeping, so
// fault-delay chaos tests stop burning real seconds.
TEST(FaultInjectorTest, DelayIsVirtualUnderScopedVirtualDelays) {
  MetricsRegistry r;
  FaultInjector f(11, &r);
  FaultSpec spec;
  spec.action = FaultAction::kDelay;
  spec.delay_ms = 500;  // would be a visible wall-clock stall if real
  spec.max_triggers = 1;
  spec.probability = 1.0;
  f.arm(kFaultSiteFetch, spec);

  sched::ScopedVirtualDelays virtual_delays;
  const uint64_t delayed_before = sched::ScopedVirtualDelays::delayed_us();
  const uint64_t clock_before = trace_clock::now_us();
  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(f.check(kFaultSiteFetch), FaultAction::kDelay);
  const auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  // The full 500ms landed on the virtual clock...
  EXPECT_GE(sched::ScopedVirtualDelays::delayed_us() - delayed_before,
            500000u);
  EXPECT_GE(trace_clock::now_us() - clock_before, 500000u);
  // ...and nowhere near it on the wall clock.
  EXPECT_LT(wall_ms.count(), 250);
}

TEST(FaultInjectorTest, FiredFaultsAreCounted) {
  MetricsRegistry r;
  FaultInjector f(13, &r);
  FaultSpec spec;
  spec.max_triggers = 5;
  f.arm(kFaultSiteProduce, spec);
  for (int i = 0; i < 10; ++i) f.check(kFaultSiteProduce);
  EXPECT_EQ(r.counter("loglens_faults_injected_total",
                      {{"site", kFaultSiteProduce}, {"action", "throw"}})
                .value(),
            5u);
}

// --- Trace propagation under faults ---------------------------------------

class TracedFaultsTest : public ::testing::Test {
 protected:
  TracedFaultsTest() : was_enabled_(trace::enabled()) {
    trace::set_enabled(true);
  }
  ~TracedFaultsTest() override { trace::set_enabled(was_enabled_); }

 private:
  bool was_enabled_;
};

// A task whose process() throws on the first N calls per message (via the
// injector), exercising the engine's retry loop while spans are recorded.
class CountingTask : public PartitionTask {
 public:
  explicit CountingTask(size_t) {}
  void process(const Message& m, TaskContext& ctx) override {
    Message out = m;
    ctx.emit(std::move(out));
  }
};

// Engine task retries keep every span of the batch in one trace, parented
// under the caller's span — a retried partition must not fork a new trace.
TEST_F(TracedFaultsTest, EngineRetriesStayInOneTrace) {
  MetricsRegistry registry;
  FaultInjector faults(21, &registry);
  FaultSpec process;
  process.probability = 1.0;
  process.max_triggers = 2;  // < task_max_attempts=4: retried, then succeeds
  faults.arm(kFaultSiteTaskProcess, process);

  EngineOptions opts;
  opts.partitions = 2;
  opts.workers = 2;
  opts.stage = "tracedstage";
  opts.metrics = &registry;
  opts.faults = &faults;
  opts.retry_base_ms = 0;
  opts.retry_cap_ms = 0;
  StreamEngine engine(opts, [](size_t p) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<CountingTask>(p);
  });

  trace::TraceContext caller;
  caller.trace_id = trace::new_trace_id();
  caller.span_id = trace::new_span_id();
  trace::ContextScope scope(caller);

  std::vector<Message> batch;
  for (int i = 0; i < 8; ++i) {
    Message m;
    m.key = "k" + std::to_string(i);
    m.value = std::to_string(i);
    m.tag = kTagData;
    batch.push_back(std::move(m));
  }
  BatchResult result = engine.run_batch(std::move(batch));
  EXPECT_GT(result.task_retries, 0u);  // the fault really fired
  EXPECT_EQ(result.outputs.size(), 8u);

  auto spans = registry.take_trace_spans();
  ASSERT_FALSE(spans.empty());
  uint64_t batch_span = 0;
  for (const auto& span : spans) {
    EXPECT_EQ(span.trace_id, caller.trace_id)
        << span.name << " escaped the caller's trace";
    if (span.name == "tracedstage.batch") {
      EXPECT_EQ(span.parent_id, caller.span_id);
      batch_span = span.span_id;
    }
  }
  ASSERT_NE(batch_span, 0u) << "no batch span recorded";
  // Retried partitions still record exactly one task span each.
  size_t task_spans = 0;
  for (const auto& span : spans) {
    if (span.name == "tracedstage.task") ++task_spans;
  }
  EXPECT_EQ(task_spans, 2u);
}

// Broker-level produce retries (the client-style loop inside produce) stamp
// the message once: the delivered copy carries the producing span's trace
// identity and a fresh enqueue timestamp.
TEST_F(TracedFaultsTest, FaultedProduceStampsTraceOnce) {
  MetricsRegistry registry;
  FaultInjector faults(31, &registry);
  FaultSpec produce;
  produce.probability = 1.0;
  produce.max_triggers = 3;  // < the broker's 5 internal attempts
  faults.arm(kFaultSiteProduce, produce);

  Broker broker(&registry, &faults);
  trace::TraceContext producer;
  producer.trace_id = trace::new_trace_id();
  producer.span_id = trace::new_span_id();
  trace::ContextScope scope(producer);

  Message m;
  m.key = "k";
  m.value = "v";
  m.tag = kTagData;
  ASSERT_TRUE(broker.produce("t", std::move(m)).ok());
  EXPECT_GT(faults.triggered(kFaultSiteProduce), 0u);

  Consumer consumer(broker, "t");
  auto got = consumer.poll(10);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].trace_id, producer.trace_id);
  EXPECT_EQ(got[0].parent_span, producer.span_id);
  EXPECT_NE(got[0].enqueue_us, 0u);
}

// At-least-once redelivery: a consumer seeked back re-reads the same
// message with its trace identity intact — the retry is visible as the
// same trace, not a new one. A stage re-publishing that message keeps the
// trace id but re-stamps the queue-wait epoch.
TEST_F(TracedFaultsTest, RedeliveryPreservesTraceIdentity) {
  MetricsRegistry registry;
  Broker broker(&registry, nullptr);

  trace::TraceContext producer;
  producer.trace_id = trace::new_trace_id();
  producer.span_id = trace::new_span_id();
  {
    trace::ContextScope scope(producer);
    Message m;
    m.key = "k";
    m.value = "v";
    m.tag = kTagData;
    ASSERT_TRUE(broker.produce("t", std::move(m)).ok());
  }

  Consumer consumer(broker, "t");
  auto checkpoint = consumer.offsets();
  auto first = consumer.poll(10);
  ASSERT_EQ(first.size(), 1u);

  consumer.seek(checkpoint);  // crash-recovery rewind
  auto redelivered = consumer.poll(10);
  ASSERT_EQ(redelivered.size(), 1u);
  EXPECT_EQ(redelivered[0].trace_id, first[0].trace_id);
  EXPECT_EQ(redelivered[0].parent_span, first[0].parent_span);
  EXPECT_EQ(redelivered[0].seq, first[0].seq);

  // Downstream re-publication (e.g. parser -> detector hop after recovery):
  // the trace id survives, but enqueue_us is re-stamped for the new queue.
  trace::TraceContext stage;
  stage.trace_id = redelivered[0].trace_id;
  stage.span_id = trace::new_span_id();
  trace::ContextScope scope(stage);
  Message repub = redelivered[0];
  const uint64_t old_enqueue = repub.enqueue_us;
  ASSERT_TRUE(broker.produce("t2", std::move(repub)).ok());
  Consumer next(broker, "t2");
  auto hop = next.poll(10);
  ASSERT_EQ(hop.size(), 1u);
  EXPECT_EQ(hop[0].trace_id, producer.trace_id);
  EXPECT_EQ(hop[0].parent_span, producer.span_id)
      << "a message that already carries a trace keeps its original parent";
  EXPECT_GE(hop[0].enqueue_us, old_enqueue);
}

}  // namespace
}  // namespace loglens
