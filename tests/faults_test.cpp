// FaultInjector unit tests: deterministic per-site streams, trigger caps,
// delay behavior, and the metrics it reports through.
#include "faults/fault_injector.h"

#include <gtest/gtest.h>

#include <chrono>
#include <vector>

namespace loglens {
namespace {

std::vector<FaultAction> draw(FaultInjector& f, const std::string& site,
                              int n) {
  std::vector<FaultAction> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) out.push_back(f.check(site));
  return out;
}

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  MetricsRegistry r1, r2;
  FaultInjector a(42, &r1);
  FaultInjector b(42, &r2);
  FaultSpec spec;
  spec.probability = 0.3;
  a.arm(kFaultSiteProduce, spec);
  b.arm(kFaultSiteProduce, spec);
  EXPECT_EQ(draw(a, kFaultSiteProduce, 200), draw(b, kFaultSiteProduce, 200));
  EXPECT_EQ(a.triggered(kFaultSiteProduce), b.triggered(kFaultSiteProduce));
  EXPECT_GT(a.triggered(kFaultSiteProduce), 0u);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  MetricsRegistry r1, r2;
  FaultInjector a(1, &r1);
  FaultInjector b(2, &r2);
  FaultSpec spec;
  spec.probability = 0.5;
  a.arm(kFaultSiteFetch, spec);
  b.arm(kFaultSiteFetch, spec);
  EXPECT_NE(draw(a, kFaultSiteFetch, 200), draw(b, kFaultSiteFetch, 200));
}

TEST(FaultInjectorTest, SiteStreamsAreIndependent) {
  // Consulting one site must not perturb another site's decision stream:
  // run B alone, then re-run B with interleaved consults at A.
  MetricsRegistry r1, r2;
  FaultInjector lone(7, &r1);
  FaultSpec spec;
  spec.probability = 0.4;
  lone.arm(kFaultSiteTaskProcess, spec);
  auto expected = draw(lone, kFaultSiteTaskProcess, 100);

  FaultInjector noisy(7, &r2);
  noisy.arm(kFaultSiteTaskProcess, spec);
  noisy.arm(kFaultSiteTaskStart, spec);
  std::vector<FaultAction> got;
  for (int i = 0; i < 100; ++i) {
    noisy.check(kFaultSiteTaskStart);  // extra draws on a different site
    got.push_back(noisy.check(kFaultSiteTaskProcess));
  }
  EXPECT_EQ(got, expected);
}

TEST(FaultInjectorTest, MaxTriggersCapsFiring) {
  MetricsRegistry r;
  FaultInjector f(9, &r);
  FaultSpec spec;
  spec.probability = 1.0;
  spec.max_triggers = 3;
  f.arm(kFaultSiteProduce, spec);
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    if (f.check(kFaultSiteProduce) != FaultAction::kNone) ++fired;
  }
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(f.triggered(kFaultSiteProduce), 3u);
  EXPECT_EQ(f.total_triggered(), 3u);
}

TEST(FaultInjectorTest, DisarmedSiteNeverFires) {
  MetricsRegistry r;
  FaultInjector f(5, &r);
  EXPECT_EQ(f.check(kFaultSiteCheckpointWrite), FaultAction::kNone);
  FaultSpec spec;
  f.arm(kFaultSiteCheckpointWrite, spec);
  EXPECT_EQ(f.check(kFaultSiteCheckpointWrite), FaultAction::kThrow);
  f.disarm(kFaultSiteCheckpointWrite);
  EXPECT_EQ(f.check(kFaultSiteCheckpointWrite), FaultAction::kNone);
  f.arm(kFaultSiteCheckpointWrite, spec);
  f.disarm_all();
  EXPECT_EQ(f.check(kFaultSiteCheckpointWrite), FaultAction::kNone);
  EXPECT_EQ(f.triggered(kFaultSiteCheckpointWrite), 1u);
}

TEST(FaultInjectorTest, HitThrowsFaultError) {
  MetricsRegistry r;
  FaultInjector f(3, &r);
  FaultSpec spec;
  spec.max_triggers = 1;
  f.arm(kFaultSiteTaskFinish, spec);
  EXPECT_THROW(f.hit(kFaultSiteTaskFinish), FaultError);
  EXPECT_NO_THROW(f.hit(kFaultSiteTaskFinish));  // cap spent
}

TEST(FaultInjectorTest, DelayStallsTheCall) {
  MetricsRegistry r;
  FaultInjector f(11, &r);
  FaultSpec spec;
  spec.action = FaultAction::kDelay;
  spec.delay_ms = 30;
  spec.max_triggers = 1;
  f.arm(kFaultSiteFetch, spec);
  auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(f.check(kFaultSiteFetch), FaultAction::kDelay);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 25);
  // A delay is survivable: hit() only throws for kThrow.
  EXPECT_NO_THROW(f.hit(kFaultSiteFetch));
}

TEST(FaultInjectorTest, FiredFaultsAreCounted) {
  MetricsRegistry r;
  FaultInjector f(13, &r);
  FaultSpec spec;
  spec.max_triggers = 5;
  f.arm(kFaultSiteProduce, spec);
  for (int i = 0; i < 10; ++i) f.check(kFaultSiteProduce);
  EXPECT_EQ(r.counter("loglens_faults_injected_total",
                      {{"site", kFaultSiteProduce}, {"action", "throw"}})
                .value(),
            5u);
}

}  // namespace
}  // namespace loglens
