// Concurrency contract of the per-thread span buffers: many writer threads
// record spans lock-free while a drainer concurrently pulls them out; no
// span may be lost (drained + dropped == pushed) and each thread's spans
// must drain in the order it pushed them. Run under TSan in CI, this is
// also the data-race proof for the SPSC ring's acquire/release protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.h"
#include "trace/trace.h"

namespace loglens {
namespace {

class TraceConcurrencyTest : public ::testing::Test {
 protected:
  TraceConcurrencyTest() : was_enabled_(trace::enabled()) {
    trace::set_enabled(true);
  }
  ~TraceConcurrencyTest() override { trace::set_enabled(was_enabled_); }

 private:
  bool was_enabled_;
};

TEST_F(TraceConcurrencyTest, WritersAndDrainerNeverLoseSpans) {
  constexpr size_t kWriters = 4;
  constexpr uint64_t kSpansPerWriter = 20000;

  trace::SpanCollector collector;
  std::atomic<bool> writers_done{false};
  std::vector<trace::Span> drained;

  // Concurrent drainer: keeps pulling while writers push, then one final
  // drain after they finish so nothing is left buffered.
  std::thread drainer([&] {
    while (!writers_done.load(std::memory_order_acquire)) {
      auto got = collector.drain();
      drained.insert(drained.end(), got.begin(), got.end());
      std::this_thread::yield();
    }
    auto got = collector.drain();
    drained.insert(drained.end(), got.begin(), got.end());
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&collector, w] {
      for (uint64_t i = 0; i < kSpansPerWriter; ++i) {
        trace::Span span;
        span.trace_id = w + 1;   // writer index
        span.span_id = i + 1;    // per-writer sequence number
        span.start_us = i;
        span.duration_us = 1;
        span.name = "w";
        collector.record(std::move(span));
      }
    });
  }
  for (auto& t : writers) t.join();
  writers_done.store(true, std::memory_order_release);
  drainer.join();

  EXPECT_EQ(drained.size() + collector.dropped(), kWriters * kSpansPerWriter);

  // Per-writer FIFO: with drop-newest, each writer's drained sequence must
  // be a strictly increasing prefix-with-gaps-only-at-the-tail... more
  // precisely, strictly increasing (order) and gap-free up to the drops
  // (the ring refuses the newest span, it never reorders or overwrites).
  std::map<uint64_t, uint64_t> last_seq;
  std::map<uint64_t, uint64_t> seen;
  for (const trace::Span& span : drained) {
    auto it = last_seq.find(span.trace_id);
    if (it != last_seq.end()) {
      EXPECT_LT(it->second, span.span_id)
          << "writer " << span.trace_id << " drained out of order";
    }
    last_seq[span.trace_id] = span.span_id;
    ++seen[span.trace_id];
  }
  ASSERT_EQ(seen.size(), kWriters);
}

TEST_F(TraceConcurrencyTest, RegistrySpanPathIsRaceFreeUnderReaders) {
  MetricsRegistry registry;
  constexpr size_t kWriters = 3;
  constexpr uint64_t kSpansPerWriter = 5000;

  std::atomic<bool> stop{false};
  // Reader thread exercises every drain entry point concurrently with the
  // lock-free writers.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      (void)registry.recent_spans();
      (void)registry.snapshot_json();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  std::atomic<uint64_t> pushed{0};
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&registry, &pushed] {
      for (uint64_t i = 0; i < kSpansPerWriter; ++i) {
        registry.record_span("hop", i, 1);
        pushed.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  // recent_spans/snapshot_json only *window* the retained ring — they never
  // consume — and the push count stays below the 65536 retention cap, so
  // every span must either be retained or counted in spans_dropped().
  auto rest = registry.take_trace_spans();
  EXPECT_EQ(rest.size() + registry.spans_dropped(),
            pushed.load(std::memory_order_relaxed));
  EXPECT_EQ(registry.take_trace_spans().size(), 0u);
}

}  // namespace
}  // namespace loglens
