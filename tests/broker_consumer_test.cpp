// The batch-handoff consumer semantics: blocking watermark polls,
// backpressure observability, batched produce — and sharded-partition
// interleaving stress meant for the TSan leg (concurrent produce /
// produce_batch / fetch across partitions share no lock but the
// per-partition ones).
#include "broker/broker.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "faults/fault_injector.h"
#include "metrics/metrics.h"

namespace loglens {
namespace {

using Clock = std::chrono::steady_clock;

Message msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = key;
  m.value = value;
  m.tag = kTagData;
  return m;
}

int64_t ms_since(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               t0)
      .count();
}

TEST(PollBlocking, TimesOutEmptyWhenNoData) {
  Broker broker;
  broker.create_topic("t", 2);
  Consumer consumer(broker, "t");
  const auto t0 = Clock::now();
  auto out = consumer.poll_blocking(/*max=*/16, /*timeout_ms=*/80);
  EXPECT_TRUE(out.empty());
  EXPECT_GE(ms_since(t0), 70);  // waited for the deadline, not a spin-out
}

TEST(PollBlocking, ReturnsImmediatelyWhenDataIsReady) {
  Broker broker;
  broker.create_topic("t", 1);
  for (int i = 0; i < 5; ++i) broker.produce("t", msg("k", "v"));
  Consumer consumer(broker, "t");
  const auto t0 = Clock::now();
  auto out = consumer.poll_blocking(/*max=*/16, /*timeout_ms=*/5000);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_LT(ms_since(t0), 1000);  // did not sit out the timeout
}

TEST(PollBlocking, ProducerWakesParkedConsumer) {
  Broker broker;
  broker.create_topic("t", 2);
  Consumer consumer(broker, "t");
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    broker.produce("t", msg("key", "wake"));
  });
  const auto t0 = Clock::now();
  auto out = consumer.poll_blocking(/*max=*/16, /*timeout_ms=*/10000);
  producer.join();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, "wake");
  // Condition-variable wakeup, not deadline expiry: well under the 10s
  // timeout. Generous bound for loaded CI machines.
  EXPECT_LT(ms_since(t0), 5000);
}

TEST(PollBlocking, LowWatermarkKeepsAccumulating) {
  Broker broker;
  broker.create_topic("t", 1);
  broker.produce("t", msg("k", "first"));
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    std::vector<Message> rest;
    for (int i = 0; i < 3; ++i) rest.push_back(msg("k", "rest"));
    broker.produce_batch("t", std::move(rest));
  });
  // min_messages=4: the one message already present must not satisfy the
  // poll on its own; the batch landing later completes the low watermark.
  Consumer consumer(broker, "t");
  auto out = consumer.poll_blocking(/*max=*/16, /*timeout_ms=*/10000,
                                    /*min_messages=*/4);
  producer.join();
  EXPECT_GE(out.size(), 4u);
}

TEST(PollBlocking, TimeoutDeliversPartialBatchBelowWatermark) {
  Broker broker;
  broker.create_topic("t", 1);
  broker.produce("t", msg("k", "only"));
  Consumer consumer(broker, "t");
  const auto t0 = Clock::now();
  // A low watermark of 8 can never be met; the deadline flushes what is
  // there instead of returning empty-handed.
  auto out = consumer.poll_blocking(/*max=*/16, /*timeout_ms=*/80,
                                    /*min_messages=*/8);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_GE(ms_since(t0), 70);
}

TEST(Consumer, QueueDepthGaugeTracksSlowSinkBackpressure) {
  MetricsRegistry registry;
  Broker broker(&registry);
  broker.create_topic("t", 1);
  Consumer consumer(broker, "t", &registry);
  Gauge& depth =
      registry.gauge("loglens_consumer_queue_depth", {{"topic", "t"}});

  // A fast producer against a sink that drains 2 messages per poll: the
  // gauge must expose the growing backlog after every poll — the signal a
  // deployment alerts on instead of discovering unbounded lag post hoc.
  for (int i = 0; i < 10; ++i) broker.produce("t", msg("k", "v"));
  EXPECT_EQ(consumer.poll(2).size(), 2u);
  EXPECT_EQ(depth.value(), 8);

  for (int i = 0; i < 6; ++i) broker.produce("t", msg("k", "v"));
  EXPECT_EQ(consumer.poll(2).size(), 2u);
  EXPECT_EQ(depth.value(), 12);
  EXPECT_EQ(consumer.lag(), 12u);

  // Draining the backlog brings the gauge back to zero.
  while (!consumer.caught_up()) consumer.poll(64);
  EXPECT_EQ(depth.value(), 0);
}

TEST(Consumer, BatchedOffsetCommitCounters) {
  MetricsRegistry registry;
  Broker broker(&registry);
  broker.create_topic("t", 2);
  Consumer consumer(broker, "t", &registry);
  Counter& commits = registry.counter("loglens_consumer_offset_commits_total",
                                      {{"topic", "t"}});
  Counter& records = registry.counter(
      "loglens_consumer_committed_records_total", {{"topic", "t"}});

  std::vector<Message> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back(msg("k" + std::to_string(i), "v"));
  }
  ASSERT_TRUE(broker.produce_batch("t", std::move(batch)).ok());

  EXPECT_EQ(consumer.poll(64).size(), 12u);
  // One commit covered the whole poll — batched, not one per message.
  EXPECT_EQ(commits.value(), 1u);
  EXPECT_EQ(records.value(), 12u);

  // An empty poll commits nothing.
  EXPECT_TRUE(consumer.poll(64).empty());
  EXPECT_EQ(commits.value(), 1u);
  EXPECT_EQ(records.value(), 12u);
}

TEST(ProduceBatch, RoutesByKeyExactlyLikeProduce) {
  Broker a;
  Broker b;
  a.create_topic("t", 4);
  b.create_topic("t", 4);
  std::vector<Message> batch;
  for (int i = 0; i < 40; ++i) {
    auto m = msg("key-" + std::to_string(i % 7), "v" + std::to_string(i));
    a.produce("t", m);
    batch.push_back(std::move(m));
  }
  ASSERT_TRUE(b.produce_batch("t", std::move(batch)).ok());
  for (size_t p = 0; p < 4; ++p) {
    auto one = a.fetch("t", p, 0, 100);
    auto two = b.fetch("t", p, 0, 100);
    ASSERT_EQ(one.size(), two.size()) << "partition " << p;
    for (size_t i = 0; i < one.size(); ++i) {
      EXPECT_EQ(one[i].value, two[i].value);
      EXPECT_EQ(one[i].seq, two[i].seq);
    }
  }
}

TEST(ProduceBatch, ExhaustedRetriesLandInFailedNotTheLog) {
  FaultInjector faults(/*seed=*/42);
  Broker broker(nullptr, &faults);
  broker.create_topic("t", 1);
  // Every produce attempt fails: the whole batch must come back in
  // `failed`, none of it in the log, and the Status must not be ok.
  FaultSpec spec;
  spec.action = FaultAction::kThrow;
  spec.probability = 1.0;
  faults.arm(kFaultSiteProduce, spec);
  std::vector<Message> batch{msg("a", "1"), msg("b", "2")};
  std::vector<Message> failed;
  Status st = broker.produce_batch("t", std::move(batch), &failed);
  EXPECT_FALSE(st.ok());
  ASSERT_EQ(failed.size(), 2u);
  EXPECT_EQ(failed[0].value, "1");
  EXPECT_EQ(failed[1].value, "2");
  EXPECT_EQ(broker.end_offset("t", 0), 0u);
}

// Sharded-partition interleaving stress (sized for the TSan leg): single
// producers and batch producers hit all partitions concurrently while
// blocking readers drain them. Verifies no message is lost or duplicated
// and per-producer order within a partition is preserved — the invariants
// the per-partition locks plus the waiter rendezvous must uphold under
// real interleaving.
TEST(BrokerShardStress, ConcurrentProduceFetchAcrossPartitions) {
  constexpr size_t kPartitions = 4;
  constexpr int kProducers = 2;
  constexpr int kBatchProducers = 2;
  constexpr int kPerProducer = 400;

  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", kPartitions).ok());

  std::vector<std::thread> producers;
  for (int pr = 0; pr < kProducers; ++pr) {
    producers.emplace_back([&, pr] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Explicit partition; the value encodes (producer, index) so
        // readers can check per-producer order within the partition.
        size_t partition = static_cast<size_t>(i) % kPartitions;
        Message m =
            msg("", "p" + std::to_string(pr) + ":" + std::to_string(i));
        EXPECT_TRUE(broker.produce("t", std::move(m), partition).ok());
      }
    });
  }
  for (int bp = 0; bp < kBatchProducers; ++bp) {
    producers.emplace_back([&, bp] {
      for (int chunk = 0; chunk < kPerProducer / 50; ++chunk) {
        std::vector<Message> batch;
        for (int i = 0; i < 50; ++i) {
          int n = chunk * 50 + i;
          // Key-routed: same key => same partition, batch order preserved.
          batch.push_back(msg("bkey-" + std::to_string(n % kPartitions),
                              "b" + std::to_string(bp) + ":" +
                                  std::to_string(n)));
        }
        EXPECT_TRUE(broker.produce_batch("t", std::move(batch)).ok());
      }
    });
  }

  const size_t total =
      static_cast<size_t>(kProducers + kBatchProducers) * kPerProducer;
  std::atomic<size_t> consumed{0};
  std::vector<std::vector<std::string>> seen(kPartitions);
  std::vector<std::thread> readers;
  for (size_t p = 0; p < kPartitions; ++p) {
    readers.emplace_back([&, p] {
      uint64_t offset = 0;
      while (consumed.load(std::memory_order_relaxed) < total) {
        auto got =
            broker.fetch_blocking("t", p, offset, 64, /*timeout_ms=*/100);
        for (auto& m : got) seen[p].push_back(std::move(m.value));
        offset += got.size();
        consumed.fetch_add(got.size(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : producers) t.join();
  for (auto& t : readers) t.join();

  // Every message arrived exactly once...
  size_t arrived = 0;
  for (const auto& partition : seen) arrived += partition.size();
  EXPECT_EQ(arrived, total);
  // ...and within each partition, each producer's stream is in order.
  for (const auto& partition : seen) {
    std::map<std::string, int> last;  // producer prefix -> last index seen
    for (const auto& value : partition) {
      auto colon = value.find(':');
      ASSERT_NE(colon, std::string::npos);
      std::string who = value.substr(0, colon);
      int index = std::stoi(value.substr(colon + 1));
      auto it = last.find(who);
      if (it != last.end()) {
        EXPECT_GT(index, it->second)
            << "out-of-order delivery for producer " << who;
      }
      last[who] = index;
    }
  }
}

// poll_blocking under concurrent multi-partition production: the consumer
// registers every partition in its offsets vector, so data landing in any
// of them wakes the park. Exercises Consumer + wait_for_data end to end.
TEST(BrokerShardStress, PollBlockingDrainsConcurrentBatchProducer) {
  constexpr size_t kPartitions = 3;
  constexpr int kBatches = 20;
  constexpr int kBatchSize = 25;
  Broker broker;
  ASSERT_TRUE(broker.create_topic("t", kPartitions).ok());
  Consumer consumer(broker, "t");

  std::thread producer([&] {
    for (int n = 0; n < kBatches; ++n) {
      std::vector<Message> batch;
      for (int i = 0; i < kBatchSize; ++i) {
        batch.push_back(msg("k" + std::to_string(i), "v"));
      }
      EXPECT_TRUE(broker.produce_batch("t", std::move(batch)).ok());
      if (n % 5 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });

  size_t got = 0;
  const size_t total = static_cast<size_t>(kBatches) * kBatchSize;
  while (got < total) {
    auto out = consumer.poll_blocking(/*max=*/64, /*timeout_ms=*/5000,
                                      /*min_messages=*/8);
    ASSERT_FALSE(out.empty()) << "timed out with " << got << "/" << total;
    got += out.size();
  }
  producer.join();
  EXPECT_EQ(got, total);
  EXPECT_TRUE(consumer.caught_up());
  EXPECT_EQ(consumer.consumed(), total);
}

}  // namespace
}  // namespace loglens
