#include "service/log_manager.h"

#include <gtest/gtest.h>

#include "service/agent.h"

namespace loglens {
namespace {

TEST(LogManager, ForwardsAndArchives) {
  Broker broker;
  LogManager manager(broker, {"ingest", "logs", 100, true});
  Agent agent(broker, {"web", "ingest"});
  agent.send_line("line one");
  agent.send_line("line two");
  EXPECT_EQ(manager.pump(), 2u);
  EXPECT_EQ(broker.end_offset("logs", 0), 2u);
  EXPECT_EQ(manager.log_store().size(), 2u);
  auto archived = manager.log_store().fetch("web");
  ASSERT_EQ(archived.size(), 2u);
  EXPECT_EQ(archived[0], "line one");
  EXPECT_TRUE(manager.sources().contains("web"));
  EXPECT_EQ(manager.forwarded(), 2u);
}

TEST(LogManager, RateControlCapsPerPump) {
  Broker broker;
  LogManagerOptions opts;
  opts.max_forward_per_pump = 5;
  LogManager manager(broker, opts);
  Agent agent(broker, {"s", "ingest"});
  for (int i = 0; i < 12; ++i) agent.send_line("l" + std::to_string(i));
  // Pumps respect the rate limit; the broker buffers the excess.
  EXPECT_EQ(manager.pump(), 5u);
  EXPECT_EQ(broker.end_offset("logs", 0), 5u);
  EXPECT_EQ(manager.pump(), 5u);
  EXPECT_EQ(manager.pump(), 2u);
  EXPECT_EQ(manager.pump(), 0u);
  EXPECT_EQ(manager.forwarded(), 12u);
}

TEST(LogManager, DrainLoopsToEmpty) {
  Broker broker;
  LogManagerOptions opts;
  opts.max_forward_per_pump = 3;
  LogManager manager(broker, opts);
  Agent agent(broker, {"s", "ingest"});
  for (int i = 0; i < 10; ++i) agent.send_line("x");
  EXPECT_EQ(manager.drain(), 10u);
  EXPECT_EQ(broker.end_offset("logs", 0), 10u);
}

TEST(LogManager, ArchivalOptional) {
  Broker broker;
  LogManagerOptions opts;
  opts.archive = false;
  LogManager manager(broker, opts);
  Agent agent(broker, {"s", "ingest"});
  agent.send_line("not archived");
  manager.drain();
  EXPECT_EQ(manager.log_store().size(), 0u);
  EXPECT_EQ(broker.end_offset("logs", 0), 1u);  // still forwarded
}

TEST(LogManager, TracksMultipleSources) {
  Broker broker;
  LogManager manager(broker, {});
  Agent a(broker, {"a", "ingest"});
  Agent b(broker, {"b", "ingest"});
  a.send_line("from a");
  b.send_line("from b");
  a.send_line("more a");
  manager.drain();
  EXPECT_EQ(manager.sources().size(), 2u);
  EXPECT_EQ(manager.log_store().fetch("a").size(), 2u);
  EXPECT_EQ(manager.log_store().fetch("b").size(), 1u);
  EXPECT_EQ(a.lines_sent(), 2u);
  EXPECT_EQ(a.source(), "a");
}

}  // namespace
}  // namespace loglens
