// Sweep over all 89 predefined timestamp formats: for each format we render
// a sample timestamp and assert the recognizer recognizes it with the right
// span and the right wall-clock meaning. This guards the whole knowledge
// base, not just the formats other tests happen to touch.
#include <gtest/gtest.h>

#include "common/strings.h"
#include "timestamp/recognizer.h"

namespace loglens {
namespace {

// Renders a sample timestamp for a SimpleDateFormat-style string. Sample
// instant: 2016-02-23 09:05:07.123, a Tuesday; day 23 > 12 disambiguates
// month/day order.
std::string render_sample(const std::string& format) {
  std::string out;
  size_t i = 0;
  while (i < format.size()) {
    char c = format[i];
    size_t run = 1;
    while (i + run < format.size() && format[i + run] == c) ++run;
    switch (c) {
      case 'y': out += run == 4 ? "2016" : "16"; break;
      case 'M':
        if (run == 1) out += "2";
        else if (run == 2) out += "02";
        else if (run == 3) out += "Feb";
        else out += "February";
        break;
      case 'd': out += run == 1 ? "23" : "23"; break;
      case 'H': out += run == 1 ? "9" : "09"; break;
      case 'h': out += run == 1 ? "9" : "09"; break;
      case 'm': out += "05"; break;
      case 's': out += "07"; break;
      case 'S': out += run == 3 ? "123" : "12"; break;
      case 'E': out += run >= 4 ? "Tuesday" : "Tue"; break;
      case 'a': out += "AM"; break;
      default: out.append(run, c); break;
    }
    i += run;
  }
  return out;
}

class PredefinedFormatSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PredefinedFormatSweep, SampleIsRecognized) {
  const std::string& format =
      TimestampRecognizer::predefined_formats()[GetParam()];
  std::string sample = render_sample(format);
  auto views = split_any(sample, " ");
  std::vector<std::string_view> tokens(views.begin(), views.end());

  // The compiled format itself must match its own sample over the full span.
  auto compiled = TimestampFormat::compile(format);
  ASSERT_TRUE(compiled.ok()) << format;
  EXPECT_TRUE(compiled->match(tokens, 0).has_value())
      << format << " -> " << sample;

  // The recognizer must recognize it too. Another format may legitimately
  // win on a prefix (e.g. a 24-hour format matching the date+time part of a
  // 12-hour sample before the AM/PM token), so span is <= token count, but
  // every field the match carries must agree with the sample instant.
  TimestampRecognizer recognizer;
  auto m = recognizer.match_at(tokens, 0);
  ASSERT_TRUE(m.has_value()) << format << " -> " << sample;
  EXPECT_GE(m->span, 1u);
  EXPECT_LE(m->span, tokens.size()) << format << " -> " << sample;

  CivilTime t = from_epoch_millis(m->epoch_ms);
  // Time of day is unambiguous in every format that carries it.
  if (format.find('H') != std::string::npos ||
      format.find('h') != std::string::npos) {
    EXPECT_EQ(t.hour, 9) << format;
    EXPECT_EQ(t.minute, 5) << format;
  }
  if (format.find('s') != std::string::npos) {
    EXPECT_EQ(t.second, 7) << format;
  }
  // Day 23 disambiguates month/day even for ambiguous orders.
  if (format.find('d') != std::string::npos) {
    EXPECT_EQ(t.day, 23) << format;
    EXPECT_EQ(t.month, 2) << format;
  }
  if (format.find("yyyy") != std::string::npos) {
    EXPECT_EQ(t.year, 2016) << format;
  }
}

INSTANTIATE_TEST_SUITE_P(All89, PredefinedFormatSweep,
                         ::testing::Range<size_t>(0, 89));

// And the compiled formats agree with the recognizer about span.
TEST(PredefinedFormats, SpansMatchTokenCounts) {
  for (const auto& f : TimestampRecognizer::predefined_formats()) {
    auto compiled = TimestampFormat::compile(f);
    ASSERT_TRUE(compiled.ok()) << f;
    EXPECT_EQ(compiled->token_span(), split_any(f, " ").size()) << f;
  }
}

}  // namespace
}  // namespace loglens
