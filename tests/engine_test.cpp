#include "streaming/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>

namespace loglens {
namespace {

Message msg(std::string key, std::string value, const char* tag = kTagData) {
  Message m;
  m.key = std::move(key);
  m.value = std::move(value);
  m.tag = tag;
  return m;
}

// Echoes every record, annotated with its partition; counts heartbeats.
class EchoTask : public PartitionTask {
 public:
  explicit EchoTask(size_t partition) : partition_(partition) {}

  void process(const Message& m, TaskContext& ctx) override {
    Message out = m;
    out.value = std::to_string(partition_) + ":" + m.value;
    ctx.emit(std::move(out));
    if (m.tag == kTagHeartbeat) ++heartbeats_;
    ++processed_;
  }

  size_t heartbeats() const { return heartbeats_; }
  size_t processed() const { return processed_; }

 private:
  size_t partition_;
  size_t heartbeats_ = 0;
  size_t processed_ = 0;
};

StreamEngine make_engine(size_t partitions, size_t workers = 2) {
  EngineOptions opts;
  opts.partitions = partitions;
  opts.workers = workers;
  return StreamEngine(opts, [](size_t p) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<EchoTask>(p);
  });
}

TEST(Engine, ProcessesAllRecords) {
  StreamEngine engine = make_engine(4);
  std::vector<Message> batch;
  for (int i = 0; i < 100; ++i) {
    batch.push_back(msg("k" + std::to_string(i), std::to_string(i)));
  }
  BatchResult result = engine.run_batch(std::move(batch));
  EXPECT_EQ(result.input_records, 100u);
  EXPECT_EQ(result.outputs.size(), 100u);
  EXPECT_EQ(result.batch_number, 1u);
}

TEST(Engine, SameKeySamePartition) {
  StreamEngine engine = make_engine(4);
  std::vector<Message> batch;
  for (int i = 0; i < 10; ++i) batch.push_back(msg("stable", "v"));
  BatchResult result = engine.run_batch(std::move(batch));
  std::set<char> partitions;
  for (const auto& m : result.outputs) partitions.insert(m.value[0]);
  EXPECT_EQ(partitions.size(), 1u);
}

TEST(Engine, HeartbeatsFanOutToEveryPartition) {
  StreamEngine engine = make_engine(3);
  Message hb = msg("src", "", kTagHeartbeat);
  hb.timestamp_ms = 12345;
  BatchResult result = engine.run_batch({hb});
  EXPECT_EQ(result.outputs.size(), 3u);  // one per partition
  for (size_t p = 0; p < 3; ++p) {
    auto& task = dynamic_cast<EchoTask&>(engine.task(p));
    EXPECT_EQ(task.heartbeats(), 1u);
  }
}

TEST(Engine, TasksPersistAcrossBatches) {
  StreamEngine engine = make_engine(2);
  engine.run_batch({msg("a", "1"), msg("b", "2")});
  engine.run_batch({msg("a", "3")});
  size_t total = 0;
  for (size_t p = 0; p < 2; ++p) {
    total += dynamic_cast<EchoTask&>(engine.task(p)).processed();
  }
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(engine.batches_run(), 2u);
}

TEST(Engine, ControlOpsRunBetweenBatchesExactlyOnce) {
  StreamEngine engine = make_engine(2);
  std::atomic<int> applied{0};
  engine.enqueue_control([&applied] { applied.fetch_add(1); });
  engine.enqueue_control([&applied] { applied.fetch_add(1); });
  EXPECT_EQ(applied.load(), 0);  // nothing applied until a batch runs
  BatchResult r1 = engine.run_batch({msg("k", "v")});
  EXPECT_EQ(applied.load(), 2);
  EXPECT_EQ(r1.control_ops_applied, 2u);
  BatchResult r2 = engine.run_batch({});
  EXPECT_EQ(applied.load(), 2);  // not re-applied
  EXPECT_EQ(r2.control_ops_applied, 0u);
}

TEST(Engine, RebroadcastAppliedBeforeNextBatch) {
  EngineOptions opts;
  opts.partitions = 2;
  opts.workers = 2;
  // Task that emits the current broadcast value for every record.
  struct BvTask : PartitionTask {
    std::shared_ptr<Broadcast<std::string>> bv;
    size_t partition;
    BvTask(std::shared_ptr<Broadcast<std::string>> b, size_t p)
        : bv(std::move(b)), partition(p) {}
    void process(const Message& m, TaskContext& ctx) override {
      Message out = m;
      out.value = *bv->value(partition);
      ctx.emit(std::move(out));
    }
  };
  auto bv = std::make_shared<Broadcast<std::string>>(1, "m1", 2);
  StreamEngine engine(opts, [&bv](size_t p) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<BvTask>(bv, p);
  });
  auto r1 = engine.run_batch({msg("a", "x"), msg("b", "y")});
  for (const auto& m : r1.outputs) EXPECT_EQ(m.value, "m1");
  engine.enqueue_control([&bv] { bv->update("m2"); });
  auto r2 = engine.run_batch({msg("a", "x"), msg("b", "y")});
  for (const auto& m : r2.outputs) EXPECT_EQ(m.value, "m2");
}

TEST(Engine, CustomPartitioner) {
  EngineOptions opts;
  opts.partitions = 2;
  opts.workers = 1;
  opts.partitioner = [](const Message& m, size_t) {
    return m.value == "left" ? 0u : 1u;
  };
  StreamEngine engine(opts, [](size_t p) -> std::unique_ptr<PartitionTask> {
    return std::make_unique<EchoTask>(p);
  });
  auto r = engine.run_batch({msg("a", "left"), msg("b", "right")});
  std::map<std::string, char> seen;
  for (const auto& m : r.outputs) seen[m.value.substr(2)] = m.value[0];
  EXPECT_EQ(seen["left"], '0');
  EXPECT_EQ(seen["right"], '1');
}

TEST(Engine, OutputsInPartitionOrder) {
  StreamEngine engine = make_engine(2, 4);
  std::vector<Message> batch;
  for (int i = 0; i < 50; ++i) {
    batch.push_back(msg("k" + std::to_string(i), std::to_string(i)));
  }
  auto r = engine.run_batch(std::move(batch));
  // Outputs are grouped by partition (0s then 1s), deterministic regardless
  // of worker scheduling.
  bool seen_one = false;
  for (const auto& m : r.outputs) {
    if (m.value[0] == '1') seen_one = true;
    if (seen_one) {
      EXPECT_EQ(m.value[0], '1');
    }
  }
}

TEST(Engine, EmptyBatchIsFine) {
  StreamEngine engine = make_engine(2);
  BatchResult r = engine.run_batch({});
  EXPECT_EQ(r.input_records, 0u);
  EXPECT_TRUE(r.outputs.empty());
}

// Regression: control ops used to run while holding the queue lock, so an
// op that enqueued a follow-up (a model instruction scheduling another
// rebroadcast) self-deadlocked. The engine now drains a swapped-out copy
// outside the lock; the follow-up lands in the *next* batch.
TEST(Engine, ControlOpMayEnqueueFollowUp) {
  StreamEngine engine = make_engine(2);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  engine.enqueue_control([&] {
    ++first;
    engine.enqueue_control([&] { ++second; });
  });
  BatchResult r1 = engine.run_batch({});
  EXPECT_EQ(r1.control_ops_applied, 1u);
  EXPECT_EQ(first.load(), 1);
  EXPECT_EQ(second.load(), 0);
  BatchResult r2 = engine.run_batch({});
  EXPECT_EQ(r2.control_ops_applied, 1u);
  EXPECT_EQ(second.load(), 1);
}

// Regression: batches_run() is read from monitoring threads while run_batch
// advances the counter — the counter is atomic now; TSan would flag the old
// plain uint64_t here.
TEST(Engine, BatchesRunReadableWhileRunning) {
  StreamEngine engine = make_engine(2);
  std::atomic<bool> stop{false};
  uint64_t observed = 0;
  std::thread reader([&] {
    while (!stop.load()) observed = std::max(observed, engine.batches_run());
  });
  for (int i = 0; i < 50; ++i) {
    engine.run_batch({msg("k", std::to_string(i))});
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(engine.batches_run(), 50u);
  EXPECT_LE(observed, 50u);
}

}  // namespace
}  // namespace loglens
