#include <gtest/gtest.h>

#include "detectors/field_range.h"
#include "detectors/keyword.h"

namespace loglens {
namespace {

// ---------------------------------------------------------------------------
// KeywordDetector
// ---------------------------------------------------------------------------

TEST(Keyword, FlagsSeverityKeywords) {
  KeywordDetector d;
  auto a = d.check("db write ERROR disk unreachable", "src", 42);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->type, AnomalyType::kKeywordAlert);
  EXPECT_EQ(a->timestamp_ms, 42);
  EXPECT_EQ(a->source, "src");
  ASSERT_EQ(a->logs.size(), 1u);
  EXPECT_NE(a->reason.find("error"), std::string::npos);
}

TEST(Keyword, CaseInsensitiveByDefault) {
  KeywordDetector d;
  EXPECT_TRUE(d.check("Fatal:", "s", 0).has_value());
  EXPECT_TRUE(d.check("EXCEPTION thrown", "s", 0).has_value());
  EXPECT_FALSE(d.check("all good here", "s", 0).has_value());
}

TEST(Keyword, SubstringsInsideTokensCount) {
  KeywordDetector d;
  EXPECT_TRUE(d.check("request timed-out: TimeoutException", "s", 0)
                  .has_value());
}

TEST(Keyword, TrainingAllowlistsNormalTokens) {
  KeywordDetector d;
  // A component legitimately named failover-manager logs constantly.
  d.observe_normal("2016/02/23 09:00:31 failover-manager heartbeat ok");
  EXPECT_EQ(d.allowlist_size(), 1u);
  EXPECT_FALSE(
      d.check("failover-manager heartbeat ok", "s", 0).has_value());
  // A *different* failure token still alarms.
  EXPECT_TRUE(d.check("write failed on disk 3", "s", 0).has_value());
}

TEST(Keyword, CustomKeywordSet) {
  KeywordDetectorOptions opts;
  opts.keywords = {"oom"};
  KeywordDetector d(opts);
  EXPECT_TRUE(d.check("kernel OOM killer invoked", "s", 0).has_value());
  EXPECT_FALSE(d.check("plain error line", "s", 0).has_value());  // not in set
}

TEST(Keyword, SerializationRoundTrip) {
  KeywordDetector d;
  d.observe_normal("failover ok");
  d.observe_normal("errorlog rotated");
  auto back = KeywordDetector::from_json(d.to_json());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->allowlist_size(), 2u);
  EXPECT_FALSE(back->check("failover ok", "s", 0).has_value());
  EXPECT_TRUE(back->check("real failure", "s", 0).has_value());
  EXPECT_FALSE(KeywordDetector::from_json(Json("bad")).ok());
}

// ---------------------------------------------------------------------------
// FieldRangeModel
// ---------------------------------------------------------------------------

ParsedLog plog(int pattern, std::initializer_list<std::pair<const char*, const char*>> fields) {
  ParsedLog log;
  log.pattern_id = pattern;
  log.timestamp_ms = 1000;
  log.raw = "raw line";
  for (const auto& [k, v] : fields) log.fields.emplace_back(k, Json(v));
  return log;
}

FieldRangeModel trained_model(FieldRangeOptions opts = {.margin = 0.0,
                                                        .min_samples = 3}) {
  FieldRangeModel m(opts);
  for (int i = 0; i <= 10; ++i) {
    m.learn(plog(1, {{"latency", std::to_string(100 + i * 10).c_str()},
                     {"user", "alice"}}));
  }
  return m;
}

TEST(FieldRange, LearnsTightBounds) {
  FieldRangeModel m = trained_model();
  EXPECT_EQ(m.tracked_fields(), 1u);  // "user" is non-numeric
  // In-range value: silent.
  EXPECT_TRUE(m.check(plog(1, {{"latency", "150"}}), "s").empty());
  EXPECT_TRUE(m.check(plog(1, {{"latency", "100"}}), "s").empty());
  EXPECT_TRUE(m.check(plog(1, {{"latency", "200"}}), "s").empty());
}

TEST(FieldRange, FlagsOutOfRange) {
  FieldRangeModel m = trained_model();
  auto high = m.check(plog(1, {{"latency", "5000"}}), "s");
  ASSERT_EQ(high.size(), 1u);
  EXPECT_EQ(high[0].type, AnomalyType::kValueOutOfRange);
  EXPECT_NE(high[0].reason.find("latency"), std::string::npos);
  auto low = m.check(plog(1, {{"latency", "3"}}), "s");
  EXPECT_EQ(low.size(), 1u);
}

TEST(FieldRange, MarginWidensBounds) {
  FieldRangeModel m = trained_model({.margin = 0.5, .min_samples = 3});
  // Span is 100; margin 0.5 allows [50, 250].
  EXPECT_TRUE(m.check(plog(1, {{"latency", "240"}}), "s").empty());
  EXPECT_FALSE(m.check(plog(1, {{"latency", "260"}}), "s").empty());
}

TEST(FieldRange, MinSamplesSuppressesThinEvidence) {
  FieldRangeModel m({.margin = 0.0, .min_samples = 100});
  for (int i = 0; i < 5; ++i) m.learn(plog(1, {{"x", "10"}}));
  EXPECT_TRUE(m.check(plog(1, {{"x", "999999"}}), "s").empty());
}

TEST(FieldRange, PerPatternIsolation) {
  FieldRangeModel m({.margin = 0.0, .min_samples = 1});
  for (int i = 0; i < 5; ++i) m.learn(plog(1, {{"v", "10"}}));
  for (int i = 0; i < 5; ++i) m.learn(plog(2, {{"v", "1000"}}));
  // 1000 is fine for pattern 2, anomalous for pattern 1.
  EXPECT_FALSE(m.check(plog(1, {{"v", "1000"}}), "s").empty());
  EXPECT_TRUE(m.check(plog(2, {{"v", "1000"}}), "s").empty());
}

TEST(FieldRange, UnknownFieldsAndNonNumericIgnored) {
  FieldRangeModel m = trained_model();
  EXPECT_TRUE(m.check(plog(1, {{"other", "999999"}}), "s").empty());
  EXPECT_TRUE(m.check(plog(1, {{"latency", "fast"}}), "s").empty());
  EXPECT_TRUE(m.check(plog(9, {{"latency", "999999"}}), "s").empty());
}

TEST(FieldRange, NegativeAndFractionalValues) {
  FieldRangeModel m({.margin = 0.0, .min_samples = 2});
  m.learn(plog(1, {{"t", "-5.5"}}));
  m.learn(plog(1, {{"t", "5.5"}}));
  EXPECT_TRUE(m.check(plog(1, {{"t", "0.0"}}), "s").empty());
  EXPECT_FALSE(m.check(plog(1, {{"t", "-6.0"}}), "s").empty());
}

TEST(FieldRange, SerializationRoundTrip) {
  FieldRangeModel m = trained_model();
  auto back = FieldRangeModel::from_json(m.to_json(),
                                         {.margin = 0.0, .min_samples = 3});
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(back.value(), m);
  EXPECT_FALSE(back->check(plog(1, {{"latency", "5000"}}), "s").empty());
  EXPECT_FALSE(FieldRangeModel::from_json(Json("nope")).ok());
  JsonArray bad;
  bad.emplace_back(Json(JsonObject{{"pattern_id", Json(1)}}));
  EXPECT_FALSE(FieldRangeModel::from_json(Json(std::move(bad))).ok());
}

TEST(FieldRange, ZeroSpanRangeUsesValueMargin) {
  FieldRangeModel m({.margin = 0.1, .min_samples = 2});
  for (int i = 0; i < 5; ++i) m.learn(plog(1, {{"c", "100"}}));
  EXPECT_TRUE(m.check(plog(1, {{"c", "105"}}), "s").empty());   // within 10%
  EXPECT_FALSE(m.check(plog(1, {{"c", "120"}}), "s").empty());  // beyond
}

}  // namespace
}  // namespace loglens
