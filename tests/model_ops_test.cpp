#include "service/model_ops.h"

#include <gtest/gtest.h>

#include "datagen/datasets.h"

namespace loglens {
namespace {

// A tiny engine whose single task reports the model version it sees.
struct Probe : PartitionTask {
  std::shared_ptr<ModelBroadcast> bv;
  explicit Probe(std::shared_ptr<ModelBroadcast> b) : bv(std::move(b)) {}
  void process(const Message& m, TaskContext& ctx) override {
    Message out = m;
    out.value = std::to_string(bv->value(0)->patterns.size());
    ctx.emit(std::move(out));
  }
};

TEST(ModelBuilder, BuildsWorkingModelFromD1) {
  Dataset d1 = make_d1(0.05);
  BuildOptions opts;
  opts.discovery = recommended_discovery("D1");
  ModelBuilder builder(opts);
  BuildResult result = builder.build(d1.training);
  EXPECT_EQ(result.training_logs, d1.training.size());
  EXPECT_EQ(result.unparsed_training_logs, 0u);
  // 7 action templates => 7 patterns; 2 event types => 2 automata.
  EXPECT_EQ(result.model.patterns.size(), 7u);
  EXPECT_EQ(result.model.sequence.automata.size(), 2u);
  EXPECT_EQ(result.model.sequence.id_fields.size(), 7u);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.discovery_seconds, 0.0);
}

TEST(ModelBuilder, EmptyCorpus) {
  ModelBuilder builder;
  BuildResult result = builder.build({});
  EXPECT_TRUE(result.model.patterns.empty());
  EXPECT_TRUE(result.model.sequence.automata.empty());
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() {
    bv_ = std::make_shared<ModelBroadcast>(1, CompositeModel{}, 1);
    EngineOptions opts;
    opts.partitions = 1;
    opts.workers = 1;
    engine_ = std::make_unique<StreamEngine>(
        opts, [this](size_t) -> std::unique_ptr<PartitionTask> {
          return std::make_unique<Probe>(bv_);
        });
    controller_ = std::make_unique<ModelController>(
        store_, std::vector<ModelController::Target>{{engine_.get(), bv_}});
    manager_ = std::make_unique<ModelManager>(store_, *controller_);
  }

  CompositeModel model_with(int patterns) {
    CompositeModel m;
    for (int i = 1; i <= patterns; ++i) {
      auto p = GrokPattern::parse("p" + std::to_string(i) + " %{NUMBER:n}");
      p->assign_field_ids(i);
      m.patterns.push_back(std::move(p.value()));
    }
    return m;
  }

  std::string probe() {
    Message m;
    m.key = "k";
    m.tag = kTagData;
    auto r = engine_->run_batch({m});
    return r.outputs.at(0).value;
  }

  ModelStore store_;
  std::shared_ptr<ModelBroadcast> bv_;
  std::unique_ptr<StreamEngine> engine_;
  std::unique_ptr<ModelController> controller_;
  std::unique_ptr<ModelManager> manager_;
};

TEST_F(ControllerTest, DeployLandsBeforeNextBatch) {
  EXPECT_EQ(probe(), "0");
  int v = manager_->deploy("m", model_with(3));
  EXPECT_EQ(v, 1);
  EXPECT_EQ(probe(), "3");
  EXPECT_EQ(manager_->deploy("m", model_with(5)), 2);
  EXPECT_EQ(probe(), "5");
}

TEST_F(ControllerTest, ApplyUnknownModelFails) {
  EXPECT_FALSE(controller_->apply({ModelInstruction::Op::kUpdate, "ghost"})
                   .ok());
  EXPECT_EQ(controller_->instructions_applied(), 0u);
}

TEST_F(ControllerTest, EditMutatesAndRedeploys) {
  manager_->deploy("m", model_with(4));
  ASSERT_TRUE(manager_
                  ->edit("m",
                         [](CompositeModel& m) { m.patterns.pop_back(); })
                  .ok());
  EXPECT_EQ(probe(), "3");
  // The store has both versions.
  EXPECT_EQ(store_.latest("m")->version, 2);
  EXPECT_FALSE(manager_->edit("ghost", [](CompositeModel&) {}).ok());
}

TEST_F(ControllerTest, DeleteDeploysEmptyModel) {
  manager_->deploy("m", model_with(2));
  EXPECT_EQ(probe(), "2");
  manager_->remove("m");
  EXPECT_EQ(probe(), "0");
  EXPECT_FALSE(manager_->get("m").ok());
}

TEST_F(ControllerTest, RebuildFromArchivedLogs) {
  LogStore logs;
  Dataset d1 = make_d1(0.02);
  for (const auto& line : d1.training) logs.add("D1", line, -1);
  BuildOptions opts;
  opts.discovery = recommended_discovery("D1");
  auto result = manager_->rebuild("m", logs, "D1", ModelBuilder(opts));
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->model.patterns.size(), 7u);
  EXPECT_EQ(probe(), "7");
  EXPECT_FALSE(
      manager_->rebuild("m", logs, "missing", ModelBuilder(opts)).ok());
}

}  // namespace
}  // namespace loglens
