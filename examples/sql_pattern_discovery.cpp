// Pattern discovery + human-in-the-loop editing on complex SQL application
// logs (the paper's Section VII-A case study and Section III-A4 editing
// operations).
//
// The app's logs are deep, GUID-ridden SQL statements (Table VI). Writing
// parsing rules by hand took the paper's users a week; discovery does it in
// seconds. Discovered patterns carry generic field ids (P7F2, ...), so this
// example also shows the domain-knowledge edits: renaming a field,
// specializing a field to a constant, and generalizing a constant into a
// field.
//
// Build & run:  ./build/examples/sql_pattern_discovery
#include <cstdio>

#include "datagen/datasets.h"
#include "grok/edit.h"
#include "service/model_ops.h"

int main() {
  using namespace loglens;

  Dataset sql = make_sql(/*scale=*/0.02);
  std::printf("custom application corpus: %zu logs\n", sql.training.size());
  std::printf("sample line:\n  %.160s...\n\n", sql.training.front().c_str());

  BuildOptions options;
  options.discovery = recommended_discovery("SQL");
  ModelBuilder builder(options);
  BuildResult result = builder.build(sql.training);
  std::printf("discovered %zu patterns in %.2f s (paper: 367 in 50 s; "
              "manual effort: ~1 week)\n",
              result.model.patterns.size(), result.discovery_seconds);

  // --- Domain-knowledge editing -------------------------------------------
  GrokPattern& p = result.model.patterns.front();
  std::printf("\nbefore editing:\n  %.160s...\n", p.to_string().c_str());

  // Rename the first generic field to something meaningful.
  for (const auto& t : p.tokens()) {
    if (t.is_field && pattern_edit::is_generic_name(t.field.name)) {
      std::string old_name = t.field.name;
      if (pattern_edit::rename_field(p, old_name, "objectId").ok()) {
        std::printf("renamed %s -> objectId\n", old_name.c_str());
      }
      break;
    }
  }

  // Generalize a literal token (the SQL verb) into a WORD field, so the
  // same pattern also parses statements with other verbs.
  for (size_t i = 0; i < p.size(); ++i) {
    const GrokToken& t = p.tokens()[i];
    if (!t.is_field && (t.literal == "SELECT" || t.literal == "UPDATE" ||
                        t.literal == "DELETE" || t.literal == "COUNT")) {
      if (pattern_edit::generalize(p, i, Datatype::kWord, "verb").ok()) {
        std::printf("generalized literal '%s' -> %%{WORD:verb}\n",
                    t.literal.c_str());
      }
      break;
    }
  }

  std::printf("after editing:\n  %.160s...\n", p.to_string().c_str());

  // Edits round-trip through the model store like any other model version.
  Json blob = result.model.to_json();
  auto restored = CompositeModel::from_json(blob);
  std::printf("\nmodel serialization round-trip: %s (%zu KB as JSON)\n",
              restored.ok() ? "ok" : "FAILED", blob.dump().size() / 1024);
  return 0;
}
