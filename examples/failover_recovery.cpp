// Failover without losing in-flight events (checkpoint/restore extension).
//
// Section V-A of the paper warns that restarting a stateful streaming
// service loses all keyed state — which is why LogLens applies model updates
// by rebroadcast instead of restarts. Crashes still happen, though. This
// example runs half a production stream, checkpoints the service (model +
// every open workflow), "crashes", restores into a brand-new service with a
// different partition layout, finishes the stream, and shows that nothing
// fell through the crack: every corrupted workflow is still caught.
//
// Build & run:  ./build/examples/failover_recovery
#include <cstdio>
#include <filesystem>
#include <set>

#include "datagen/datasets.h"
#include "service/service.h"

int main() {
  using namespace loglens;

  Dataset d1 = make_d1(/*scale=*/0.05);
  ServiceOptions options;
  options.build.discovery = recommended_discovery("D1");
  std::string checkpoint_path =
      (std::filesystem::temp_directory_path() / "loglens_failover.json")
          .string();

  std::set<std::string> detected;
  size_t open_at_crash = 0;
  {
    LogLensService primary(options);
    primary.train(d1.training);
    Agent agent = primary.make_agent("prod");
    std::vector<std::string> first_half(
        d1.testing.begin(), d1.testing.begin() + d1.testing.size() / 2);
    agent.replay(first_half);
    primary.drain();
    for (const auto& a : primary.anomalies().all()) {
      if (!a.event_id.empty()) detected.insert(a.event_id);
    }
    open_at_crash = primary.open_events();
    if (!primary.checkpoint(checkpoint_path).ok()) {
      std::printf("checkpoint failed\n");
      return 1;
    }
    std::printf("primary processed %zu logs, found %zu anomalous workflows, "
                "checkpointed %zu in-flight workflows... and crashed.\n",
                first_half.size(), detected.size(), open_at_crash);
  }  // primary gone — with it, every in-memory open state

  {
    ServiceOptions standby_options = options;
    standby_options.detector_partitions = 5;  // different layout is fine
    LogLensService standby(standby_options);
    if (!standby.restore(checkpoint_path).ok()) {
      std::printf("restore failed\n");
      return 1;
    }
    std::printf("standby restored %zu in-flight workflows across %zu "
                "partitions.\n",
                standby.open_events(), standby_options.detector_partitions);

    Agent agent = standby.make_agent("prod");
    std::vector<std::string> second_half(
        d1.testing.begin() + d1.testing.size() / 2, d1.testing.end());
    agent.replay(second_half);
    standby.drain();
    standby.heartbeat_advance(24L * 3600 * 1000);
    standby.drain();
    for (const auto& a : standby.anomalies().all()) {
      if (!a.event_id.empty()) detected.insert(a.event_id);
    }
  }
  std::remove(checkpoint_path.c_str());

  size_t truth = d1.injected_anomalies();
  size_t found = 0;
  for (const auto& id : d1.anomalous_event_ids) {
    if (detected.contains(id)) ++found;
  }
  std::printf("\nacross the crash boundary: %zu/%zu corrupted workflows "
              "caught, %zu false positives.\n",
              found, truth, detected.size() - found);
  return found == truth ? 0 : 1;
}
