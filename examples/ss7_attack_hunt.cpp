// Hunting SS7 spoofing attacks (the paper's Section VII-B case study).
//
// Normal SS7 MAP dialogues follow
//   InvokePurgeMs -> InvokeSendAuthenticationInfo -> InvokeUpdateLocation
// keyed by IMSI. Attackers probing credentials stop after the second step,
// so their dialogues never reach the end state. LogLens learns the dialogue
// automaton from two hours of clean traffic — including discovering that
// the IMSI field is the event ID — and flags every truncated dialogue in
// the following hour. The timeline shows the attack bursts.
//
// Build & run:  ./build/examples/ss7_attack_hunt
#include <cstdio>

#include "datagen/datasets.h"
#include "service/dashboard.h"
#include "service/service.h"

int main() {
  using namespace loglens;

  Dataset ss7 = make_ss7(/*scale=*/0.01);
  std::printf("SS7 traffic: %zu training logs (2h), %zu testing logs (1h)\n",
              ss7.training.size(), ss7.testing.size());
  std::printf("hidden spoofing dialogues: %zu\n",
              ss7.anomalous_event_ids.size());

  ServiceOptions options;
  options.build.discovery = recommended_discovery("SS7");
  LogLensService service(options);
  BuildResult build = service.train(ss7.training);

  std::printf("\nlearned dialogue model:\n");
  for (const auto& [pattern, field] : build.model.sequence.id_fields) {
    std::printf("  pattern %d links dialogues via field %s\n", pattern,
                field.c_str());
  }

  Agent probe = service.make_agent("ss7");
  probe.replay(ss7.testing);
  service.drain();
  service.heartbeat_advance(2L * 3600 * 1000);
  service.drain();

  size_t hits = 0;
  for (const auto& a :
       service.anomalies().by_type(AnomalyType::kMissingEndState)) {
    if (ss7.anomalous_event_ids.contains(a.event_id)) ++hits;
  }
  std::printf("\nspoofed dialogues flagged: %zu / %zu\n", hits,
              ss7.anomalous_event_ids.size());

  // Figure 6 analogue: anomalies cluster in time around the attack bursts.
  const int64_t test_start = 1462788000000 + 2 * 3600'000;
  Dashboard dashboard(service.anomalies(), service.model_store(),
                      service.log_store());
  std::printf("\n%s", dashboard
                  .render_timeline(test_start, test_start + 3600'000,
                                   5 * 60'000)
                  .c_str());

  std::printf("\nexample flagged dialogue:\n%s",
              dashboard.render_recent(1).c_str());
  return 0;
}
