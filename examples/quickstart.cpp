// Quickstart: the LogLens core loop in ~60 lines.
//
//   1. Give LogLens a handful of "correct" logs.
//   2. It discovers GROK patterns (no regexes written by you).
//   3. It parses a live stream with those patterns; anything that does not
//      match any pattern is a stateless anomaly.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "logmine/discoverer.h"
#include "parser/log_parser.h"
#include "tokenize/preprocessor.h"

int main() {
  using namespace loglens;

  // --- 1. Training logs: what "normal" looks like -------------------------
  std::vector<std::string> training = {
      "2016/02/23 09:00:31 10.0.0.1 login user1",
      "2016/02/23 09:00:32 10.0.0.7 login user2",
      "2016/02/23 09:00:35 10.0.0.2 login alice9",
      "2016/02/23 09:01:02 Connect DB 127.0.0.1 user abc123",
      "2016/02/23 09:01:09 Connect DB 10.1.1.5 user svc_batch",
      "2016/02/23 09:01:44 Connect DB 10.1.1.9 user reporter",
  };

  // --- 2. Discover patterns ----------------------------------------------
  Preprocessor pre = std::move(Preprocessor::create({}).value());
  std::vector<TokenizedLog> tokenized;
  for (const auto& line : training) tokenized.push_back(pre.process(line));

  DiscoveryOptions options;
  options.max_dist = 0.45;  // short demo logs; see DESIGN.md for tuning
  PatternDiscoverer discoverer(options, pre.classifier());
  std::vector<GrokPattern> patterns = discoverer.discover(tokenized);

  std::printf("discovered %zu patterns:\n", patterns.size());
  for (const auto& p : patterns) {
    std::printf("  P%d: %s\n", p.id(), p.to_string().c_str());
  }

  // --- 3. Parse a live stream ---------------------------------------------
  LogParser parser(patterns, pre.classifier());
  std::vector<std::string> stream = {
      "2016/02/23 10:14:03 10.0.0.9 login bob",
      "2016/02/23 10:14:21 Connect DB 192.168.0.4 user etl",
      "kernel: BUG: unable to handle page fault at 0xdeadbeef",
  };
  std::printf("\nparsing live stream:\n");
  for (const auto& line : stream) {
    ParseOutcome outcome = parser.parse(pre.process(line));
    if (outcome.log.has_value()) {
      std::printf("  parsed   %s\n", outcome.log->to_json().dump().c_str());
    } else {
      std::printf("  ANOMALY  unparsed log: %s\n", line.c_str());
    }
  }
  return 0;
}
