// Data-center workflow monitoring: the full LogLens service on a trace-log
// stream (the paper's D1 scenario and Figure 2 workload).
//
// Demonstrates the deployed pipeline of Figure 1: an agent ships logs to the
// log manager, the stateless parser turns them into JSON records, the
// stateful detector tracks request/transaction workflows by their
// automatically-discovered event ID, heartbeats expire stuck workflows, and
// the dashboard summarizes what went wrong.
//
// Build & run:  ./build/examples/datacenter_monitor
#include <cstdio>

#include "datagen/datasets.h"
#include "service/dashboard.h"
#include "service/service.h"

int main() {
  using namespace loglens;

  // Synthetic data-center trace: two workflow types, 21 corrupted test
  // events hidden among ~170 normal ones.
  Dataset d1 = make_d1(/*scale=*/0.05);
  std::printf("training logs: %zu, testing logs: %zu, injected anomalies: %zu\n",
              d1.training.size(), d1.testing.size(),
              d1.injected_anomalies());

  ServiceOptions options;
  options.build.discovery = recommended_discovery("D1");
  LogLensService service(options);

  // Train: discover patterns, event ID fields, and workflow automata.
  BuildResult build = service.train(d1.training);
  std::printf("\nmodel: %zu patterns, %zu automata\n",
              build.model.patterns.size(),
              build.model.sequence.automata.size());
  for (const auto& a : build.model.sequence.automata) {
    std::printf("  automaton %d: %zu states, duration [%lld, %lld] ms, "
                "%zu training events\n",
                a.id, a.states.size(),
                static_cast<long long>(a.min_duration_ms),
                static_cast<long long>(a.max_duration_ms),
                a.training_instances);
  }

  // Stream production logs through the live pipeline.
  Agent agent = service.make_agent("datacenter");
  agent.replay(d1.testing);
  service.drain();

  // The heartbeat controller keeps log time moving so workflows that lost
  // their final log still get reported.
  service.heartbeat_advance(24L * 3600 * 1000);
  service.drain();

  // Inspect the results.
  Dashboard dashboard(service.anomalies(), service.model_store(),
                      service.log_store());
  std::printf("\n%s", dashboard.render().c_str());
  std::printf("\nmost recent anomalies:\n%s",
              dashboard.render_recent(3).c_str());

  size_t found = 0;
  for (const auto& a : service.anomalies().all()) {
    if (d1.anomalous_event_ids.contains(a.event_id)) ++found;
  }
  std::printf("ground truth check: all %zu corrupted workflows flagged: %s\n",
              d1.injected_anomalies(),
              found >= d1.injected_anomalies() ? "yes" : "NO");
  return 0;
}
